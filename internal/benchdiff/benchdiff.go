// Package benchdiff compares committed benchmark baselines against fresh
// runs — the regression gate of the run observatory. It understands every
// BENCH_*.json schema the repo emits and flattens each into a flat list of
// directional metrics: lower-better timings (ns_per_op, stage wall time,
// chaos latency percentiles), higher-better derived figures (parallel
// speedups, cache ratios, worker utilization), and informational counts
// that are reported when they move but never fail the gate. A metric is a
// regression when it worsens past its tolerance — generous by default so
// shared-runner noise does not fail builds, tightenable per invocation.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Direction classifies how a metric's value relates to quality.
type Direction int

const (
	// LowerBetter marks timings and failure counts: growth is a regression.
	LowerBetter Direction = iota
	// HigherBetter marks speedups, ratios, utilization: shrink regresses.
	HigherBetter
	// Info metrics (sample sizes, fault counts) are reported when they
	// change but never regress.
	Info
)

func (d Direction) String() string {
	switch d {
	case LowerBetter:
		return "lower-better"
	case HigherBetter:
		return "higher-better"
	default:
		return "info"
	}
}

// Metric is one flattened benchmark figure.
type Metric struct {
	Name  string
	Value float64
	Dir   Direction
	// Tol, when > 0, is the schema-suggested tolerance for this metric:
	// single-shot stage timings (one call, no iteration averaging) are far
	// noisier than ns_per_op figures and get a wider gate. A caller's
	// Tolerances.PerMetric entry still wins.
	Tol float64
	// Floor, when > 0, is an absolute noise floor in the metric's own unit:
	// a change whose absolute delta stays under it never regresses, whatever
	// the ratio says. Millisecond-scale single-shot timings need this — a
	// 2ms stage can "triple" on scheduler jitter alone.
	Floor float64
}

// SingleShotTolerance is the suggested tolerance for timings measured from
// one execution: they may double before the gate trips.
const SingleShotTolerance = 1.0

// SpeedupTolerance is the suggested tolerance for derived speedup ratios.
// Parallel speedups measured on shared machines swing hard with scheduler
// load — a burst that lands on one variant but not the other moves the
// ratio alone — so only a drop past 50%, a real collapse, trips the gate.
// (1.0 would make a higher-better ratio ungateable: a positive value
// cannot drop more than 100%.)
const SpeedupTolerance = 0.5

// ShortBenchNS is the total measured time (b.N x ns_per_op) below which a
// Go benchmark's ns_per_op is treated as burst-sensitive rather than
// averaged: whether five 120ms iterations or two hundred 40µs ones, a
// measurement that completes in under a second can land entirely inside
// one host-load burst, so such entries gate at SingleShotTolerance.
const ShortBenchNS = 1e9

// Absolute noise floors for single-shot timings: below 25ms of wall time a
// one-execution measurement is at scheduler-jitter resolution and ratios
// carry no signal. A genuine algorithmic regression in such a stage clears
// the floor easily.
const (
	SingleShotFloorNS      = 25e6  // stage avg_ns / wall_ns documents
	SingleShotFloorSeconds = 0.025 // telemetry *_seconds histogram metrics
)

// Schemas this package understands.
const (
	SchemaTelemetry = "nassim-telemetry-bench/v1"
	SchemaPipeline  = "nassim-pipeline-bench/v1"
	SchemaMapper    = "nassim-mapper-bench/v1"
	SchemaFrontend  = "nassim-frontend-bench/v1"
	SchemaChaos     = "nassim-chaos-bench/v1"
	SchemaReconcile = "nassim-reconcile-bench/v1"
	SchemaServe     = "nassim-serve-bench/v1"
)

// Flatten parses one BENCH_*.json document and flattens it into
// directional metrics. The document's "schema" field selects the layout.
func Flatten(doc []byte) (string, []Metric, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(doc, &head); err != nil {
		return "", nil, fmt.Errorf("benchdiff: not a JSON document: %w", err)
	}
	var ms []Metric
	var err error
	switch head.Schema {
	case SchemaTelemetry:
		ms, err = flattenTelemetry(doc)
	case SchemaPipeline:
		ms, err = flattenPipeline(doc)
	case SchemaMapper:
		ms, err = flattenBenchmarks(doc, false)
	case SchemaFrontend:
		ms, err = flattenBenchmarks(doc, true)
	case SchemaChaos:
		ms, err = flattenChaos(doc)
	case SchemaReconcile:
		ms, err = flattenReconcile(doc)
	case SchemaServe:
		ms, err = flattenServe(doc)
	case "":
		return "", nil, fmt.Errorf("benchdiff: document has no schema field")
	default:
		return "", nil, fmt.Errorf("benchdiff: unknown schema %q", head.Schema)
	}
	if err != nil {
		return "", nil, err
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return head.Schema, ms, nil
}

type stageRec struct {
	Name    string `json:"name"`
	Calls   int    `json:"calls"`
	TotalNS int64  `json:"total_ns"`
	AvgNS   int64  `json:"avg_ns"`
}

func stageMetrics(stages []stageRec) []Metric {
	var ms []Metric
	for _, s := range stages {
		// Stage tables come from one pipeline run, not b.N iterations: use
		// the single-shot gate.
		ms = append(ms,
			Metric{Name: "stage." + s.Name + ".avg_ns", Value: float64(s.AvgNS), Dir: LowerBetter,
				Tol: SingleShotTolerance, Floor: SingleShotFloorNS},
			Metric{Name: "stage." + s.Name + ".calls", Value: float64(s.Calls), Dir: Info},
		)
	}
	return ms
}

func flattenTelemetry(doc []byte) ([]Metric, error) {
	var d struct {
		Stages  []stageRec         `json:"stages"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, err
	}
	ms := stageMetrics(d.Stages)
	for k, v := range d.Metrics {
		// The registry snapshot mixes counters and duration histograms;
		// duration sums/averages gate as timings, the rest is informational.
		dir := Info
		tol, floor := 0.0, 0.0
		if strings.Contains(k, "_seconds") &&
			(strings.HasSuffix(metricBase(k), "_sum") || strings.HasSuffix(metricBase(k), "_avg")) {
			dir = LowerBetter
			tol = SingleShotTolerance // one run's histogram, not an average over b.N
			floor = SingleShotFloorSeconds
		}
		ms = append(ms, Metric{Name: "metric." + k, Value: v, Dir: dir, Tol: tol, Floor: floor})
	}
	return ms, nil
}

// metricBase strips a flattened metric key's {labels} suffix.
func metricBase(k string) string {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i]
	}
	return k
}

func flattenPipeline(doc []byte) ([]Metric, error) {
	var d struct {
		Jobs   int        `json:"jobs"`
		WallNS int64      `json:"wall_ns"`
		Stages []stageRec `json:"stages"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, err
	}
	ms := []Metric{
		{Name: "wall_ns", Value: float64(d.WallNS), Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorNS},
		{Name: "jobs", Value: float64(d.Jobs), Dir: Info},
	}
	return append(ms, stageMetrics(d.Stages)...), nil
}

// flattenBenchmarks handles the mapper and frontend documents: a
// benchmarks map of ns_per_op entries, plus (frontend) a derived map of
// higher-better figures.
func flattenBenchmarks(doc []byte, derived bool) ([]Metric, error) {
	var d struct {
		Benchmarks map[string]struct {
			NsPerOp float64 `json:"ns_per_op"`
			N       int     `json:"n"`
		} `json:"benchmarks"`
		Derived map[string]float64 `json:"derived"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, err
	}
	var ms []Metric
	for k, v := range d.Benchmarks {
		tol := 0.0
		if v.N > 0 && v.NsPerOp*float64(v.N) < ShortBenchNS {
			tol = SingleShotTolerance
		}
		ms = append(ms, Metric{Name: "bench." + k + ".ns_per_op", Value: v.NsPerOp, Dir: LowerBetter, Tol: tol})
	}
	if derived {
		for k, v := range d.Derived {
			// Speedup ratios swing with scheduler load far more than the
			// utilization and cache-ratio figures do (a fan-out near 1.0x —
			// ROADMAP item 4 — can land either side of it run to run);
			// give them the wider speedup gate so only a real collapse fails.
			// Keys ending in _ns or _ns_per_* are derived timings
			// (decode_ns_per_artifact, the parse+validate wall figures):
			// those gate lower-better like any other timing.
			tol := 0.0
			dir := HigherBetter
			if strings.Contains(k, "speedup") {
				tol = SpeedupTolerance
			}
			if strings.HasSuffix(k, "_ns") || strings.Contains(k, "_ns_per_") {
				dir = LowerBetter
			}
			ms = append(ms, Metric{Name: "derived." + k, Value: v, Dir: dir, Tol: tol})
		}
	}
	return ms, nil
}

func flattenChaos(doc []byte) ([]Metric, error) {
	var d struct {
		N       int     `json:"n"`
		P50Ms   float64 `json:"exec_p50_ms"`
		P99Ms   float64 `json:"exec_p99_ms"`
		MeanMs  float64 `json:"exec_mean_ms"`
		Retries int64   `json:"retries"`
		Faults  struct {
			Conns   int64 `json:"connections"`
			Dropped int64 `json:"dropped"`
			Resets  int64 `json:"resets"`
			Spikes  int64 `json:"latency_spikes"`
		} `json:"faults_delivered"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, err
	}
	return []Metric{
		{Name: "exec_p50_ms", Value: d.P50Ms, Dir: LowerBetter},
		{Name: "exec_p99_ms", Value: d.P99Ms, Dir: LowerBetter},
		{Name: "exec_mean_ms", Value: d.MeanMs, Dir: LowerBetter},
		{Name: "retries", Value: float64(d.Retries), Dir: LowerBetter},
		{Name: "n", Value: float64(d.N), Dir: Info},
		{Name: "faults.connections", Value: float64(d.Faults.Conns), Dir: Info},
		{Name: "faults.dropped", Value: float64(d.Faults.Dropped), Dir: Info},
		{Name: "faults.resets", Value: float64(d.Faults.Resets), Dir: Info},
		{Name: "faults.latency_spikes", Value: float64(d.Faults.Spikes), Dir: Info},
	}, nil
}

// SingleShotFloorMs is SingleShotFloorNS in milliseconds, for documents
// whose timings are already millisecond-valued.
const SingleShotFloorMs = 25.0

func flattenReconcile(doc []byte) ([]Metric, error) {
	var d struct {
		N             int     `json:"n"`
		Devices       int     `json:"devices"`
		CycleP50Ms    float64 `json:"cycle_p50_ms"`
		CycleMeanMs   float64 `json:"cycle_mean_ms"`
		ProbesPerSec  float64 `json:"probes_per_sec"`
		ProbeP50Ms    float64 `json:"probe_p50_ms"`
		ProbeP99Ms    float64 `json:"probe_p99_ms"`
		CacheHitRatio float64 `json:"cache_hit_ratio"`
		DriftActions  int     `json:"drift_actions"`
		Health        struct {
			Converged   int `json:"converged"`
			Drifted     int `json:"drifted"`
			Degraded    int `json:"degraded"`
			Unreachable int `json:"unreachable"`
		} `json:"health"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, err
	}
	return []Metric{
		// Cycle and probe timings come from a handful of cycles, so they
		// gate like single-shot measurements with a millisecond floor.
		{Name: "cycle_p50_ms", Value: d.CycleP50Ms, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "cycle_mean_ms", Value: d.CycleMeanMs, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "probe_p50_ms", Value: d.ProbeP50Ms, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "probe_p99_ms", Value: d.ProbeP99Ms, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "probes_per_sec", Value: d.ProbesPerSec, Dir: HigherBetter,
			Tol: SpeedupTolerance},
		// The cache economy and fleet health are seeded and deterministic:
		// any unreachable device is a robustness regression, and a cache-hit
		// collapse means revalidation stopped being incremental.
		{Name: "cache_hit_ratio", Value: d.CacheHitRatio, Dir: HigherBetter},
		{Name: "health.unreachable", Value: float64(d.Health.Unreachable), Dir: LowerBetter},
		{Name: "n", Value: float64(d.N), Dir: Info},
		{Name: "devices", Value: float64(d.Devices), Dir: Info},
		{Name: "drift_actions", Value: float64(d.DriftActions), Dir: Info},
		{Name: "health.converged", Value: float64(d.Health.Converged), Dir: Info},
		{Name: "health.drifted", Value: float64(d.Health.Drifted), Dir: Info},
		{Name: "health.degraded", Value: float64(d.Health.Degraded), Dir: Info},
	}, nil
}

func flattenServe(doc []byte) ([]Metric, error) {
	var d struct {
		Requests      int     `json:"requests"`
		Errors        int     `json:"errors"`
		DurationMs    float64 `json:"duration_ms"`
		RPS           float64 `json:"rps"`
		LatencyP50Ms  float64 `json:"latency_p50_ms"`
		LatencyP99Ms  float64 `json:"latency_p99_ms"`
		LatencyMeanMs float64 `json:"latency_mean_ms"`
		DedupHitRatio float64 `json:"dedup_hit_ratio"`
		Dedup8Way     struct {
			Clients    int     `json:"clients"`
			Executions float64 `json:"executions"`
			HitRatio   float64 `json:"hit_ratio"`
		} `json:"dedup_8way"`
		Queue struct {
			MaxDepth float64 `json:"max_depth"`
			Shed     float64 `json:"shed"`
		} `json:"queue"`
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, err
	}
	return []Metric{
		// Serving latency is measured per request but over a short warm
		// loop on a shared runner, so it gates like a single-shot timing
		// with a millisecond floor.
		{Name: "latency_p50_ms", Value: d.LatencyP50Ms, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "latency_p99_ms", Value: d.LatencyP99Ms, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "latency_mean_ms", Value: d.LatencyMeanMs, Dir: LowerBetter,
			Tol: SingleShotTolerance, Floor: SingleShotFloorMs},
		{Name: "rps", Value: d.RPS, Dir: HigherBetter, Tol: SpeedupTolerance},
		// The dedup economy is the tentpole invariant: the warm phase must
		// stay near-fully deduplicated and the 8-way fan-in must coalesce
		// to one execution. These are deterministic, not timing-noisy.
		{Name: "dedup_hit_ratio", Value: d.DedupHitRatio, Dir: HigherBetter},
		{Name: "dedup_8way.hit_ratio", Value: d.Dedup8Way.HitRatio, Dir: HigherBetter},
		{Name: "dedup_8way.executions", Value: d.Dedup8Way.Executions, Dir: LowerBetter},
		// Queue pressure under the bench workload: a depth or shed growth
		// means admission started backing up. A small absolute floor keeps
		// the empty-queue baseline from tripping on a 0 -> 1 blip.
		{Name: "queue.max_depth", Value: d.Queue.MaxDepth, Dir: LowerBetter, Floor: 8},
		{Name: "queue.shed", Value: d.Queue.Shed, Dir: LowerBetter, Floor: 8},
		{Name: "errors", Value: float64(d.Errors), Dir: LowerBetter},
		{Name: "requests", Value: float64(d.Requests), Dir: Info},
		{Name: "dedup_8way.clients", Value: float64(d.Dedup8Way.Clients), Dir: Info},
		{Name: "duration_ms", Value: d.DurationMs, Dir: Info},
	}, nil
}

// Tolerances sets the allowed fractional worsening before a metric
// regresses. Defaults are deliberately loose: CI timing on shared runners
// is noisy, and a gate that cries wolf gets deleted.
type Tolerances struct {
	// Timing is the allowed fractional increase of a lower-better metric
	// (0.5 = may grow 50%). <= 0 takes the default.
	Timing float64
	// Derived is the allowed fractional decrease of a higher-better metric.
	// <= 0 takes the default.
	Derived float64
	// PerMetric overrides the tolerance for specific metric names.
	PerMetric map[string]float64
}

// Default tolerances.
const (
	DefaultTimingTolerance  = 0.50
	DefaultDerivedTolerance = 0.25
)

func (t Tolerances) timing() float64 {
	if t.Timing > 0 {
		return t.Timing
	}
	return DefaultTimingTolerance
}

func (t Tolerances) derived() float64 {
	if t.Derived > 0 {
		return t.Derived
	}
	return DefaultDerivedTolerance
}

func (t Tolerances) forMetric(m Metric) float64 {
	if v, ok := t.PerMetric[m.Name]; ok {
		return v
	}
	if m.Tol > 0 {
		return m.Tol
	}
	if m.Dir == HigherBetter {
		return t.derived()
	}
	return t.timing()
}

// Delta is one metric's baseline-vs-current comparison.
type Delta struct {
	Name      string    `json:"name"`
	Dir       Direction `json:"-"`
	Direction string    `json:"direction"`
	Base      float64   `json:"base"`
	Cur       float64   `json:"current"`
	// Change is the signed fractional change, (cur-base)/base; +Inf when
	// the baseline is zero and the current value is not.
	Change float64 `json:"change"`
	// Threshold is the tolerance this delta was gated against.
	Threshold float64 `json:"threshold"`
	Regressed bool    `json:"regressed"`
}

// Result is one document pair's comparison.
type Result struct {
	Schema string  `json:"schema"`
	Deltas []Delta `json:"deltas"`
	// MissingCurrent lists baseline metrics absent from the current run;
	// AddedCurrent the reverse. Missing metrics count as regressions — a
	// benchmark silently dropped is exactly what a gate must catch.
	MissingCurrent []string `json:"missing_current,omitempty"`
	AddedCurrent   []string `json:"added_current,omitempty"`
}

// Regressions returns the deltas that failed the gate.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Failed reports whether the comparison must fail the build.
func (r *Result) Failed() bool {
	return len(r.MissingCurrent) > 0 || len(r.Regressions()) > 0
}

// Compare flattens both documents (which must share a schema) and gates
// every baseline metric against its current value.
func Compare(baseline, current []byte, tol Tolerances) (*Result, error) {
	bs, bms, err := Flatten(baseline)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	cs, cms, err := Flatten(current)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if bs != cs {
		return nil, fmt.Errorf("benchdiff: schema mismatch: baseline %q vs current %q", bs, cs)
	}
	cur := make(map[string]Metric, len(cms))
	for _, m := range cms {
		cur[m.Name] = m
	}
	res := &Result{Schema: bs}
	seen := map[string]bool{}
	for _, bm := range bms {
		seen[bm.Name] = true
		cm, ok := cur[bm.Name]
		if !ok {
			res.MissingCurrent = append(res.MissingCurrent, bm.Name)
			continue
		}
		d := Delta{Name: bm.Name, Dir: bm.Dir, Direction: bm.Dir.String(),
			Base: bm.Value, Cur: cm.Value,
			Threshold: tol.forMetric(bm)}
		switch {
		case bm.Value == 0 && cm.Value == 0:
			d.Change = 0
		case bm.Value == 0:
			d.Change = math.Inf(1)
		default:
			d.Change = (cm.Value - bm.Value) / math.Abs(bm.Value)
		}
		switch bm.Dir {
		case LowerBetter:
			d.Regressed = d.Change > d.Threshold
		case HigherBetter:
			d.Regressed = d.Change < -d.Threshold
		}
		if d.Regressed && bm.Floor > 0 && math.Abs(cm.Value-bm.Value) < bm.Floor {
			// Under the absolute noise floor the ratio is jitter, not signal.
			d.Regressed = false
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, cm := range cms {
		if !seen[cm.Name] {
			res.AddedCurrent = append(res.AddedCurrent, cm.Name)
		}
	}
	return res, nil
}

// Table renders the result as an aligned human-readable table; changed or
// regressed metrics first, unchanged informational rows summarized.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Schema)
	fmt.Fprintf(&b, "  %-52s %14s %14s %9s  %s\n", "metric", "baseline", "current", "change", "verdict")
	quiet := 0
	for _, d := range r.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = fmt.Sprintf("REGRESSED (>%g%% %s)", 100*d.Threshold, worseWord(d.Dir))
		} else if d.Dir == Info {
			if d.Change == 0 {
				quiet++
				continue
			}
			verdict = "info"
		} else if d.Change == 0 {
			quiet++
			continue
		}
		fmt.Fprintf(&b, "  %-52s %14s %14s %+8.1f%%  %s\n",
			d.Name, fmtVal(d.Base), fmtVal(d.Cur), 100*d.Change, verdict)
	}
	for _, name := range r.MissingCurrent {
		fmt.Fprintf(&b, "  %-52s %14s %14s %9s  MISSING from current run\n", name, "-", "-", "")
	}
	for _, name := range r.AddedCurrent {
		fmt.Fprintf(&b, "  %-52s %14s %14s %9s  new metric (no baseline)\n", name, "-", "-", "")
	}
	if quiet > 0 {
		fmt.Fprintf(&b, "  (%d unchanged metric(s) hidden)\n", quiet)
	}
	return b.String()
}

func worseWord(d Direction) string {
	if d == HigherBetter {
		return "drop"
	}
	return "growth"
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
