package corpus

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// figure3Corpus is the sample parsed VDM corpus of the paper's Figure 3.
func figure3Corpus() Corpus {
	return Corpus{
		CLIs:        []string{"peer <ipv4-address> group <group-name>"},
		FuncDef:     "Adds a peer to a peer group.",
		ParentViews: []string{"BGP view"},
		ParaDef: []ParaDef{
			{Paras: "ipv4-address", Info: "Specifies the IPv4 address of a peer."},
			{Paras: "group-name", Info: "Specifies the name of a peer group."},
		},
		Examples: [][]string{{"bgp 100", " peer 10.1.1.1 group test"}},
		Vendor:   "Huawei",
	}
}

func TestFigure3CorpusPasses(t *testing.T) {
	c := figure3Corpus()
	if v := Check(0, &c); len(v) != 0 {
		t.Errorf("Figure 3 corpus fails tests: %v", v)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []Corpus{figure3Corpus()}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// The five Table 3 keys must appear verbatim in the JSON.
	for _, key := range basicKeys {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("JSON missing key %q", key)
		}
	}
}

func TestUnmarshalError(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestParamTokens(t *testing.T) {
	c := Corpus{CLIs: []string{
		"filter-policy { <acl-number> | ip-prefix <ip-prefix-name> } { import | export }",
		"undo filter-policy <acl-number>",
	}}
	got := c.ParamTokens()
	want := []string{"acl-number", "ip-prefix-name"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParamTokens = %v, want %v", got, want)
	}
}

func TestParamTokensIgnoresMalformed(t *testing.T) {
	c := Corpus{CLIs: []string{"peer <unclosed", "cmp a < b and c > d", "ok <x>"}}
	got := c.ParamTokens()
	if !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("ParamTokens = %v, want [x]", got)
	}
}

func TestDefinedParams(t *testing.T) {
	c := Corpus{ParaDef: []ParaDef{
		{Paras: "ipv4-address, ipv6-address", Info: "addresses"},
		{Paras: "<group-name>", Info: "group"},
	}}
	got := c.DefinedParams()
	want := []string{"ipv4-address", "ipv6-address", "group-name"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DefinedParams = %v, want %v", got, want)
	}
}

func TestCheckCatchesMissingFields(t *testing.T) {
	c := Corpus{} // everything empty
	v := Check(3, &c)
	fields := map[string]bool{}
	for _, violation := range v {
		fields[violation.Field] = true
		if violation.Index != 3 {
			t.Errorf("violation index = %d, want 3", violation.Index)
		}
	}
	for _, want := range []string{"CLIs", "ParentViews", "FuncDef"} {
		if !fields[want] {
			t.Errorf("no violation recorded for empty %s (got %v)", want, v)
		}
	}
}

func TestSelfCheckCatchesUndescribedParam(t *testing.T) {
	c := figure3Corpus()
	c.ParaDef = c.ParaDef[:1] // drop group-name description
	v := Check(0, &c)
	found := false
	for _, violation := range v {
		if violation.Test == TestCLISelfCheck && strings.Contains(violation.Msg, "group-name") {
			found = true
		}
	}
	if !found {
		t.Errorf("self-check missed undescribed parameter: %v", v)
	}
}

func TestCheckJSONMissingKeys(t *testing.T) {
	raw := []byte(`{"CLIs": ["vlan <vlan-id>"], "FuncDef": "x", "SourceURL": "http://example/page"}`)
	v := CheckJSON(0, raw)
	missing := map[string]bool{}
	for _, violation := range v {
		if violation.Test == TestKeysCompleteness {
			missing[violation.Field] = true
		}
		if violation.URL != "http://example/page" {
			t.Errorf("violation URL = %q", violation.URL)
		}
	}
	for _, want := range []string{"ParentViews", "ParaDef", "Examples"} {
		if !missing[want] {
			t.Errorf("missing key %s not reported: %v", want, v)
		}
	}
}

func TestCheckJSONTypeRestrictions(t *testing.T) {
	raw := []byte(`{
		"CLIs": "not a list",
		"FuncDef": 42,
		"ParentViews": ["ok"],
		"ParaDef": [{"Paras": "x", "Info": "y"}],
		"Examples": ["flat", "strings"]
	}`)
	v := CheckJSON(1, raw)
	bad := map[string]bool{}
	for _, violation := range v {
		if violation.Test == TestTypeRestriction {
			bad[violation.Field] = true
		}
	}
	for _, want := range []string{"CLIs", "FuncDef", "Examples"} {
		if !bad[want] {
			t.Errorf("type violation for %s not reported: %v", want, v)
		}
	}
	if bad["ParentViews"] || bad["ParaDef"] {
		t.Errorf("false positives: %v", v)
	}
}

func TestCheckJSONNotADict(t *testing.T) {
	v := CheckJSON(0, []byte(`["list", "not", "dict"]`))
	if len(v) != 1 || !strings.Contains(v[0].Msg, "not a JSON dictionary") {
		t.Errorf("violations = %v", v)
	}
}

func TestReportWorkflow(t *testing.T) {
	good := figure3Corpus()
	bad := Corpus{CLIs: []string{"peer <x>"}, FuncDef: "f", ParentViews: []string{"v"}}
	r := RunTests([]Corpus{good, bad})
	if r.Passed() {
		t.Fatal("report passed despite violations")
	}
	if r.Total != 2 {
		t.Errorf("total = %d", r.Total)
	}
	if n := r.ByTest()[TestCLISelfCheck]; n != 1 {
		t.Errorf("self-check count = %d, want 1", n)
	}
	if len(r.ProblematicCLIs()) == 0 {
		t.Error("problematic CLIs list empty")
	}
	sum := r.Summary()
	for _, frag := range []string{"2 corpora", TestCLISelfCheck, "problematic 'CLIs'"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary missing %q:\n%s", frag, sum)
		}
	}
	// A clean batch passes.
	if !RunTests([]Corpus{good}).Passed() {
		t.Error("clean batch did not pass")
	}
}

func TestSummaryTruncatesLongLists(t *testing.T) {
	var batch []Corpus
	for i := 0; i < 30; i++ {
		batch = append(batch, Corpus{FuncDef: "x", ParentViews: []string{"v"}})
	}
	r := RunTests(batch)
	if !strings.Contains(r.Summary(), "more") {
		t.Errorf("summary does not truncate: %s", r.Summary())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Index: 7, URL: "http://x", Test: TestTypeRestriction, Field: "CLIs", Msg: "bad"}
	s := v.String()
	for _, frag := range []string{"corpus 7", "http://x", TestTypeRestriction, "CLIs", "bad"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestPrimaryCLI(t *testing.T) {
	c := figure3Corpus()
	if got := c.PrimaryCLI(); got != c.CLIs[0] {
		t.Errorf("PrimaryCLI = %q", got)
	}
	empty := Corpus{}
	if got := empty.PrimaryCLI(); got != "" {
		t.Errorf("PrimaryCLI of empty corpus = %q", got)
	}
}

// Property: extractParams finds exactly the well-formed placeholders.
func TestExtractParamsProperty(t *testing.T) {
	f := func(names []string) bool {
		var b strings.Builder
		var want []string
		b.WriteString("cmd")
		for _, n := range names {
			clean := strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' {
					return r
				}
				return -1
			}, n)
			if clean == "" {
				continue
			}
			b.WriteString(" <" + clean + ">")
			want = append(want, clean)
		}
		got := extractParams(b.String())
		if len(want) == 0 {
			return len(got) == 0
		}
		// extractParams preserves order but drops nothing well-formed.
		i := 0
		for _, g := range got {
			if i < len(want) && g == want[i] {
				i++
			}
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVendorConstraints(t *testing.T) {
	huawei := figure3Corpus()
	huaweiNoView := figure3Corpus()
	huaweiNoView.ParentViews = []string{"BGP"} // suffix missing
	huaweiNoExample := figure3Corpus()
	huaweiNoExample.Examples = nil

	cons := VendorConstraints("Huawei")
	if len(cons) == 0 {
		t.Fatal("no Huawei constraints")
	}
	if r := RunConstraintTests(cons, []Corpus{huawei}); !r.Passed() {
		t.Errorf("clean Huawei corpus violates constraints: %v", r.Violations)
	}
	r := RunConstraintTests(cons, []Corpus{huaweiNoView, huaweiNoExample})
	if len(r.Violations) != 2 {
		t.Fatalf("violations = %v", r.Violations)
	}
	if !strings.Contains(r.Violations[0].Test, "ViewNaming") ||
		!strings.Contains(r.Violations[1].Test, "ExamplesPresent") {
		t.Errorf("violations = %v", r.Violations)
	}

	// Nokia: examples must be ABSENT, views end with "context".
	nokia := Corpus{
		CLIs: []string{"peer <ipv4-address>"}, FuncDef: "f",
		ParentViews: []string{"BGP context"},
		ParaDef:     []ParaDef{{Paras: "ipv4-address", Info: "a"}},
	}
	if r := RunConstraintTests(VendorConstraints("Nokia"), []Corpus{nokia}); !r.Passed() {
		t.Errorf("clean Nokia corpus violates constraints: %v", r.Violations)
	}
	nokiaWithExample := nokia
	nokiaWithExample.Examples = [][]string{{"peer 10.0.0.1"}}
	if r := RunConstraintTests(VendorConstraints("Nokia"), []Corpus{nokiaWithExample}); r.Passed() {
		t.Error("Nokia corpus with examples passed")
	}
	if got := VendorConstraints("unknown"); got != nil {
		t.Errorf("unknown vendor constraints = %v", got)
	}
}

func TestReportMerge(t *testing.T) {
	a := &Report{Total: 2, Violations: []Violation{{Index: 0, Test: "A"}}}
	b := &Report{Total: 2, Violations: []Violation{{Index: 1, Test: "B"}}}
	a.Merge(b)
	if len(a.Violations) != 2 {
		t.Errorf("merged = %v", a.Violations)
	}
}
