package corpus

import (
	"fmt"

	"nassim/internal/artifact"
)

// Binary (de)serialization of corpora and TDD reports for the
// nassim-art/v1 artifact store. The encoding preserves nil-vs-empty
// slice distinctions exactly, so a binary round trip re-marshals to the
// same JSON bytes as the reference codec (the fuzz suite holds the two
// paths equal). Decoded strings alias the artifact buffer — warm cache
// hits materialize a corpus batch without copying any manual text.

// AppendBinary writes one corpus batch to an artifact section.
func AppendBinary(e *artifact.Enc, corpora []Corpus) {
	e.Len(len(corpora), corpora == nil)
	for i := range corpora {
		appendCorpus(e, &corpora[i])
	}
}

func appendCorpus(e *artifact.Enc, c *Corpus) {
	e.Len(len(c.CLIs), c.CLIs == nil)
	for _, s := range c.CLIs {
		e.String(s)
	}
	e.String(c.FuncDef)
	e.Len(len(c.ParentViews), c.ParentViews == nil)
	for _, s := range c.ParentViews {
		e.String(s)
	}
	e.Len(len(c.ParaDef), c.ParaDef == nil)
	for _, pd := range c.ParaDef {
		e.String(pd.Paras)
		e.String(pd.Info)
	}
	e.Len(len(c.Examples), c.Examples == nil)
	for _, ex := range c.Examples {
		e.Len(len(ex), ex == nil)
		for _, line := range ex {
			e.String(line)
		}
	}
	e.String(c.EnablesView)
	e.String(c.SourceURL)
	e.String(c.Vendor)
}

// DecodeBinary reads a corpus batch written by AppendBinary.
func DecodeBinary(d *artifact.Dec) ([]Corpus, error) {
	n, isNil := d.Len()
	if isNil {
		return nil, d.Err()
	}
	out := make([]Corpus, n)
	for i := range out {
		decodeCorpus(d, &out[i])
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("corpus: binary decode: %w", err)
	}
	return out, nil
}

func decodeCorpus(d *artifact.Dec, c *Corpus) {
	if n, isNil := d.Len(); !isNil {
		c.CLIs = make([]string, n)
		for i := range c.CLIs {
			c.CLIs[i] = d.String()
		}
	}
	c.FuncDef = d.String()
	if n, isNil := d.Len(); !isNil {
		c.ParentViews = make([]string, n)
		for i := range c.ParentViews {
			c.ParentViews[i] = d.String()
		}
	}
	if n, isNil := d.Len(); !isNil {
		c.ParaDef = make([]ParaDef, n)
		for i := range c.ParaDef {
			c.ParaDef[i].Paras = d.String()
			c.ParaDef[i].Info = d.String()
		}
	}
	if n, isNil := d.Len(); !isNil {
		c.Examples = make([][]string, n)
		for i := range c.Examples {
			if m, exNil := d.Len(); !exNil {
				c.Examples[i] = make([]string, m)
				for j := range c.Examples[i] {
					c.Examples[i][j] = d.String()
				}
			}
		}
	}
	c.EnablesView = d.String()
	c.SourceURL = d.String()
	c.Vendor = d.String()
}

// AppendReportBinary writes a completeness report (nil allowed).
func AppendReportBinary(e *artifact.Enc, r *Report) {
	if r == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(int64(r.Total))
	e.Len(len(r.Violations), r.Violations == nil)
	for _, v := range r.Violations {
		e.Int(int64(v.Index))
		e.String(v.URL)
		e.String(v.Test)
		e.String(v.Field)
		e.String(v.Msg)
	}
}

// DecodeReportBinary reads a report written by AppendReportBinary.
func DecodeReportBinary(d *artifact.Dec) (*Report, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	r := &Report{Total: int(d.Int())}
	if n, isNil := d.Len(); !isNil {
		r.Violations = make([]Violation, n)
		for i := range r.Violations {
			r.Violations[i] = Violation{
				Index: int(d.Int()),
				URL:   d.String(),
				Test:  d.String(),
				Field: d.String(),
				Msg:   d.String(),
			}
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("corpus: binary report decode: %w", err)
	}
	return r, nil
}
