// Package corpus defines NAssim's vendor-independent VDM corpus format
// (§4, Table 3, Figure 3): the unified container that normalizes the
// heterogeneous styles of vendor manuals. One Corpus holds everything a
// manual page says about one CLI command; a slice of Corpus values is the
// preliminary VDM handed to the Validator. The package also implements the
// Test-Driven-Development completeness tests of Appendix B and the
// violation reports that drive the human-in-the-loop parser workflow.
package corpus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ParaDef describes one placeholder parameter: its name(s) as printed in
// the manual and the implication/value-range text.
type ParaDef struct {
	Paras string `json:"Paras"`
	Info  string `json:"Info"`
}

// Corpus is one manual page in the vendor-independent format. The five
// JSON keys and their type restrictions are Table 3 verbatim.
type Corpus struct {
	CLIs        []string   `json:"CLIs"`
	FuncDef     string     `json:"FuncDef"`
	ParentViews []string   `json:"ParentViews"`
	ParaDef     []ParaDef  `json:"ParaDef"`
	Examples    [][]string `json:"Examples"`

	// EnablesView extends the base format (Table 3 is "easy to expand"):
	// vendors whose manuals explicitly document the working view a
	// structural command opens (Nokia's context tree) publish it here; for
	// other vendors the Validator derives the same relation from Examples.
	EnablesView string `json:"Enables,omitempty"`

	// Bookkeeping outside the five basic keys: the external link back to
	// the manual page (used in violation reports so developers can jump to
	// the problematic page) and the vendor name.
	SourceURL string `json:"SourceURL,omitempty"`
	Vendor    string `json:"Vendor,omitempty"`
}

// PrimaryCLI returns the first (canonical) CLI template of the page, or "".
func (c *Corpus) PrimaryCLI() string {
	if len(c.CLIs) == 0 {
		return ""
	}
	return c.CLIs[0]
}

// ParamTokens extracts the angle-bracketed placeholder names from all CLIs
// fields, in first-appearance order without duplicates. The Appendix B
// self-check cross-references these against ParaDef.
func (c *Corpus) ParamTokens() []string {
	var out []string
	seen := map[string]bool{}
	for _, cli := range c.CLIs {
		for _, tok := range extractParams(cli) {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	return out
}

// extractParams scans a template for <name> placeholders.
func extractParams(s string) []string {
	var out []string
	for i := 0; i < len(s); {
		open := strings.IndexByte(s[i:], '<')
		if open < 0 {
			break
		}
		open += i
		close := strings.IndexByte(s[open:], '>')
		if close < 0 {
			break
		}
		close += open
		name := s[open+1 : close]
		if name != "" && !strings.ContainsAny(name, " \t") {
			out = append(out, name)
		}
		i = close + 1
	}
	return out
}

// DefinedParams returns the parameter names listed in ParaDef. A Paras
// field may list several names separated by commas or whitespace.
func (c *Corpus) DefinedParams() []string {
	var out []string
	for _, pd := range c.ParaDef {
		for _, f := range strings.FieldsFunc(pd.Paras, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		}) {
			f = strings.Trim(f, "<>")
			if f != "" {
				out = append(out, f)
			}
		}
	}
	return out
}

// Marshal encodes corpora as indented JSON — the released-dataset format.
func Marshal(corpora []Corpus) ([]byte, error) {
	return json.MarshalIndent(corpora, "", "  ")
}

// Unmarshal decodes a released-dataset JSON document.
func Unmarshal(data []byte) ([]Corpus, error) {
	var out []Corpus
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("corpus: decoding dataset: %w", err)
	}
	return out, nil
}

// basicKeys are the five mandatory keys of Table 3.
var basicKeys = []string{"CLIs", "FuncDef", "ParentViews", "ParaDef", "Examples"}

// Violation is one failed completeness test for one corpus.
type Violation struct {
	Index int    // corpus position within the batch
	URL   string // external link to the manual page, when known
	Test  string // which Appendix B test failed
	Field string // offending field
	Msg   string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	loc := fmt.Sprintf("corpus %d", v.Index)
	if v.URL != "" {
		loc += " (" + v.URL + ")"
	}
	return fmt.Sprintf("%s: [%s] %s: %s", loc, v.Test, v.Field, v.Msg)
}

// Test names, as reported in violation summaries.
const (
	TestKeysCompleteness = "KeysCompleteness"
	TestTypeRestriction  = "TypeRestriction"
	TestCLISelfCheck     = "CLIKeywordParameterSelfCheck"
)

// CheckJSON runs the Keys Completeness and Type Restriction tests against a
// raw JSON document holding one corpus object, catching structural problems
// a typed decode would silently repair (missing keys, wrong value kinds).
func CheckJSON(index int, raw []byte) []Violation {
	var v []Violation
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return []Violation{{Index: index, Test: TestKeysCompleteness, Field: "(document)",
			Msg: "not a JSON dictionary: " + err.Error()}}
	}
	url := ""
	if u, ok := m["SourceURL"]; ok {
		_ = json.Unmarshal(u, &url)
	}
	for _, key := range basicKeys {
		if _, ok := m[key]; !ok {
			v = append(v, Violation{Index: index, URL: url, Test: TestKeysCompleteness,
				Field: key, Msg: "missing basic key"})
		}
	}
	type restriction struct {
		key  string
		dst  any
		desc string
	}
	checks := []restriction{
		{"CLIs", new([]string), "a list of string"},
		{"FuncDef", new(string), "string"},
		{"ParentViews", new([]string), "a list of string"},
		{"ParaDef", new([]ParaDef), `a list of dict (keys "Paras" and "Info")`},
		{"Examples", new([][]string), "a list of list"},
	}
	for _, c := range checks {
		raw, ok := m[c.key]
		if !ok {
			continue // already reported by the completeness test
		}
		if err := json.Unmarshal(raw, c.dst); err != nil {
			v = append(v, Violation{Index: index, URL: url, Test: TestTypeRestriction,
				Field: c.key, Msg: "must be " + c.desc})
		}
	}
	return v
}

// Check runs the Appendix B tests against a decoded corpus: non-empty-list
// restrictions of Table 3 plus the CLI keyword/parameter self-check (angle
// bracketed tokens in CLIs must be cross-referenced in ParaDef — this is
// the test that exposed Cisco's interchangeable cKeyword/cBold CSS tags).
func Check(index int, c *Corpus) []Violation {
	var v []Violation
	add := func(test, field, msg string) {
		v = append(v, Violation{Index: index, URL: c.SourceURL, Test: test, Field: field, Msg: msg})
	}
	if len(c.CLIs) == 0 {
		add(TestTypeRestriction, "CLIs", "non-empty list required")
	}
	for i, cli := range c.CLIs {
		if strings.TrimSpace(cli) == "" {
			add(TestTypeRestriction, "CLIs", fmt.Sprintf("entry %d is empty", i))
		}
	}
	if len(c.ParentViews) == 0 {
		add(TestTypeRestriction, "ParentViews", "non-empty list required")
	}
	if strings.TrimSpace(c.FuncDef) == "" {
		add(TestTypeRestriction, "FuncDef", "empty function description")
	}
	for i, pd := range c.ParaDef {
		if strings.TrimSpace(pd.Paras) == "" {
			add(TestTypeRestriction, "ParaDef", fmt.Sprintf("entry %d has empty Paras", i))
		}
	}
	// CLI keyword/parameter self-check: the angle-bracketed tokens of the
	// CLIs fields and the parameters of ParaDef must cross-reference in
	// both directions; a mismatch in either means the page's keyword vs
	// parameter font styling was mis-identified (Appendix B).
	defined := map[string]bool{}
	for _, p := range c.DefinedParams() {
		defined[p] = true
	}
	inCLI := map[string]bool{}
	for _, p := range c.ParamTokens() {
		inCLI[p] = true
		if !defined[p] {
			add(TestCLISelfCheck, "CLIs",
				fmt.Sprintf("parameter <%s> not described in ParaDef (keyword/parameter styling may be mis-parsed)", p))
		}
	}
	if len(c.CLIs) > 0 {
		for _, p := range c.DefinedParams() {
			if !inCLI[p] {
				add(TestCLISelfCheck, "ParaDef",
					fmt.Sprintf("parameter %s described in ParaDef but absent from the CLIs field", p))
			}
		}
	}
	return v
}

// Report is the two-part violation report of §4: a summary of corpora with
// problematic key attributes, and the per-corpus violation status.
type Report struct {
	Total      int
	Violations []Violation
}

// RunTests runs every Appendix B test over a parsed batch.
func RunTests(corpora []Corpus) *Report {
	r := &Report{Total: len(corpora)}
	for i := range corpora {
		r.Violations = append(r.Violations, Check(i, &corpora[i])...)
	}
	return r
}

// Passed reports whether the batch passed all tests — the TDD loop's exit
// condition (§4 step 2&3 iterate until all tests pass).
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// ProblematicCLIs lists the indices of corpora whose 'CLIs' field failed a
// test — part one of the report, with external links where available.
func (r *Report) ProblematicCLIs() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Field == "CLIs" {
			out = append(out, v)
		}
	}
	return out
}

// ByTest groups violation counts by test name.
func (r *Report) ByTest() map[string]int {
	out := map[string]int{}
	for _, v := range r.Violations {
		out[v.Test]++
	}
	return out
}

// Summary renders the human-readable report the parser developer iterates
// against.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus completeness report: %d corpora, %d violations\n", r.Total, len(r.Violations))
	byTest := r.ByTest()
	tests := make([]string, 0, len(byTest))
	for t := range byTest {
		tests = append(tests, t)
	}
	sort.Strings(tests)
	for _, t := range tests {
		fmt.Fprintf(&b, "  %-32s %d\n", t, byTest[t])
	}
	if prob := r.ProblematicCLIs(); len(prob) > 0 {
		fmt.Fprintf(&b, "summary of key attributes (problematic 'CLIs' fields):\n")
		max := len(prob)
		if max > 20 {
			max = 20
		}
		for _, v := range prob[:max] {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		if len(prob) > max {
			fmt.Fprintf(&b, "  ... and %d more\n", len(prob)-max)
		}
	}
	return b.String()
}
