package corpus

import (
	"fmt"
	"strings"
)

// §4 step 0 of the parser-development workflow: "We augment the base
// Table 3 with additional type constraints for this vendor; an automated
// procedure then generates a set of tests." A Constraint is one such
// vendor-specific restriction; GenerateConstraintTests compiles a set into
// the same violation-reporting form the base tests use, so the TDD report
// covers both.

// Constraint is one vendor-specific restriction on parsed corpora.
type Constraint struct {
	Name  string
	Field string
	// Check returns "" when the corpus satisfies the constraint, or the
	// violation message.
	Check func(c *Corpus) string
}

// viewSuffixConstraint requires every parent view name to end with the
// vendor's wording ("... view", "... mode", "... context") — a cheap,
// reliable detector for a parser that grabbed the wrong element.
func viewSuffixConstraint(suffix string) Constraint {
	return Constraint{
		Name:  "ViewNaming",
		Field: "ParentViews",
		Check: func(c *Corpus) string {
			for _, v := range c.ParentViews {
				if !strings.HasSuffix(v, suffix) {
					return fmt.Sprintf("view %q does not end with %q", v, suffix)
				}
			}
			return ""
		},
	}
}

// examplesPresentConstraint requires example snippets: for vendors whose
// manuals always show them, an example-less corpus means the parser missed
// the section.
var examplesPresentConstraint = Constraint{
	Name:  "ExamplesPresent",
	Field: "Examples",
	Check: func(c *Corpus) string {
		if len(c.Examples) == 0 {
			return "no example snippet parsed (the manual always provides one)"
		}
		return ""
	},
}

// examplesAbsentConstraint is the inverse: Nokia manuals publish no
// example snippets, so any parsed example is a mis-extraction.
var examplesAbsentConstraint = Constraint{
	Name:  "ExamplesAbsent",
	Field: "Examples",
	Check: func(c *Corpus) string {
		if len(c.Examples) != 0 {
			return "example snippets parsed from a manual that has none"
		}
		return ""
	},
}

// VendorConstraints returns the built-in additional constraints for a
// vendor ("" for vendors without any).
func VendorConstraints(vendor string) []Constraint {
	switch strings.ToLower(vendor) {
	case "huawei":
		return []Constraint{viewSuffixConstraint(" view"), examplesPresentConstraint}
	case "cisco":
		return []Constraint{viewSuffixConstraint(" mode"), examplesPresentConstraint}
	case "nokia":
		return []Constraint{viewSuffixConstraint(" context"), examplesAbsentConstraint}
	case "h3c":
		return []Constraint{viewSuffixConstraint(" view"), examplesPresentConstraint}
	case "juniper":
		return []Constraint{viewSuffixConstraint(" hierarchy level"), examplesPresentConstraint}
	}
	return nil
}

// RunConstraintTests runs a constraint set over a batch and reports
// violations in the base report's form (Test = "VendorConstraint:<name>").
func RunConstraintTests(constraints []Constraint, corpora []Corpus) *Report {
	r := &Report{Total: len(corpora)}
	for i := range corpora {
		for _, con := range constraints {
			if msg := con.Check(&corpora[i]); msg != "" {
				r.Violations = append(r.Violations, Violation{
					Index: i, URL: corpora[i].SourceURL,
					Test:  "VendorConstraint:" + con.Name,
					Field: con.Field, Msg: msg,
				})
			}
		}
	}
	return r
}

// Merge folds another report's violations into this one (the combined
// base + vendor-constraint TDD report).
func (r *Report) Merge(other *Report) {
	r.Violations = append(r.Violations, other.Violations...)
}
