package nassim

import (
	"context"
	"net"
	"time"

	"nassim/internal/device"
	"nassim/internal/faultnet"
)

// This file is the public robustness surface: fault injection for the
// device transport (internal/faultnet) and the resilient client that
// survives it (retry with backoff, circuit breaking, session replay).
// Together they exercise the §5.3 live-validation path the way real
// legacy devices exercise it — with resets, latency spikes, garbage, and
// flapping — while keeping every run deterministic for a fixed seed.

// Resilience types re-exported from the internal packages.
type (
	// ChaosProfile declares which transport faults to inject and how
	// often; the zero value injects nothing.
	ChaosProfile = faultnet.Profile
	// ChaosStats counts the faults an injector actually delivered.
	ChaosStats = faultnet.Stats
	// FaultListener is a fault-injecting wrapper around a net.Listener.
	FaultListener = faultnet.Listener
	// RetryPolicy tunes the resilient client's retry loop.
	RetryPolicy = device.RetryPolicy
	// BreakerConfig tunes the per-device circuit breaker.
	BreakerConfig = device.BreakerConfig
	// BreakerState is a circuit breaker's automaton state.
	BreakerState = device.BreakerState
	// ResilientOptions tunes DialDeviceResilient.
	ResilientOptions = device.ResilientOptions
	// ResilientDeviceClient is a device client hardened for flaky
	// endpoints: lazy dial, retries with exponential backoff, circuit
	// breaking, and view-stack replay after reconnects.
	ResilientDeviceClient = device.ResilientClient
)

// Circuit-breaker states, re-exported for BreakerState comparisons.
const (
	BreakerClosed   = device.BreakerClosed
	BreakerOpen     = device.BreakerOpen
	BreakerHalfOpen = device.BreakerHalfOpen
)

// ErrBreakerOpen is returned (wrapped) by resilient clients fast-failing
// through an open circuit breaker.
var ErrBreakerOpen = device.ErrBreakerOpen

// StandardChaosProfile is the standard chaos profile used by the chaos
// suite, `nassim run -chaos`, and the chaos benchmark: 5% connection
// resets, 10% latency spikes of 200ms, and one flap window of two
// connections.
func StandardChaosProfile(seed uint64) ChaosProfile {
	return faultnet.Standard(seed, 200*time.Millisecond)
}

// DeadDeviceProfile drops every connection immediately — the fixture the
// circuit breaker must open on.
func DeadDeviceProfile() ChaosProfile { return ChaosProfile{Dead: true} }

// ServeDeviceChaos serves a simulated device through a fault-injecting
// listener ("127.0.0.1:0" picks an ephemeral port). The returned
// FaultListener reports delivered-fault statistics.
func ServeDeviceChaos(d *Device, addr string, p ChaosProfile) (*DeviceServer, *FaultListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	fl := faultnet.Wrap(l, p)
	return device.ServeListener(d, fl), fl, nil
}

// DialDeviceContext opens a CLI session against a served device, bounding
// the connect and greeting exchange by the context's deadline (or the
// transport's default dial timeout).
func DialDeviceContext(ctx context.Context, addr string) (*DeviceClient, error) {
	return device.DialContext(ctx, addr)
}

// DialDeviceResilient returns a resilient client for a served device. The
// connection is established lazily on the first exchange, so a dead
// device surfaces as exchange failures and an open breaker rather than a
// constructor error.
func DialDeviceResilient(addr string, opts ResilientOptions) *ResilientDeviceClient {
	return device.DialResilient(addr, opts)
}

// chaosSeed derives the per-vendor fault and jitter seed for job i of a
// chaos run. Each vendor gets its own injector and client streams, so
// determinism holds for any worker count.
func chaosSeed(base uint64, i int) uint64 {
	return base + uint64(i)*0x9e3779b97f4a7c15
}
