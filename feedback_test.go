package nassim_test

import (
	"context"
	"testing"

	"nassim"
)

// TestFeedbackLoopImprovesMapper simulates §3.2's continuous improvement:
// an engineer reviews recommendations batch by batch, confirming the
// ground truth; after each retrain the mapper's recall on the remaining
// (unreviewed) parameters must not degrade and must end above the
// untrained baseline.
func TestFeedbackLoopImprovesMapper(t *testing.T) {
	u := nassim.BuildUDM()
	asr, err := nassim.AssimilateVendor(context.Background(), "Nokia", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 110, 13)
	reviewBatch, holdout := anns[:60], anns[60:]

	mp, err := nassim.NewMapper(u, nassim.ModelNetBERT)
	if err != nil {
		t.Fatal(err)
	}
	baseline := nassim.Evaluate(mp, asr.VDM, u, holdout, []int{1, 10})

	loop := nassim.NewFeedbackLoop(mp, asr.VDM, u, nil, 10, 1, 13)
	for _, ann := range reviewBatch {
		// The engineer inspects the list, then confirms the truth (either a
		// listed recommendation or a manual correction).
		recs := loop.Review(ann.Param, 10)
		if len(recs) == 0 {
			t.Fatalf("no recommendations for %v", ann.Param)
		}
		if err := loop.Confirm(ann.Param, ann.AttrID); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(loop.Confirmed()); got != 60 {
		t.Fatalf("confirmed = %d", got)
	}
	stats, err := loop.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Positives != 60 {
		t.Errorf("retrained on %d positives", stats.Positives)
	}
	tuned := nassim.Evaluate(mp, asr.VDM, u, holdout, []int{1, 10})
	if tuned.MRR <= baseline.MRR {
		t.Errorf("feedback loop did not improve MRR: %.4f -> %.4f", baseline.MRR, tuned.MRR)
	}
	if tuned.Recall[10] < baseline.Recall[10] {
		t.Errorf("recall@10 degraded: %.1f -> %.1f", baseline.Recall[10], tuned.Recall[10])
	}
}

func TestFeedbackLoopSeedPairs(t *testing.T) {
	u := nassim.BuildUDM()
	nokia, err := nassim.AssimilateVendor(context.Background(), "Nokia", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	huawei, err := nassim.AssimilateVendor(context.Background(), "Huawei", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Seed with Huawei's pairs, review Nokia.
	seed := nassim.BuildTrainingPairs(huawei.VDM, u,
		nassim.GroundTruthAnnotations(huawei.Model, 100, 5))
	mp, err := nassim.NewMapper(u, nassim.ModelNetBERT)
	if err != nil {
		t.Fatal(err)
	}
	loop := nassim.NewFeedbackLoop(mp, nokia.VDM, u, seed, 0, 0, 5)
	anns := nassim.GroundTruthAnnotations(nokia.Model, 20, 5)
	for _, ann := range anns[:5] {
		if err := loop.Confirm(ann.Param, ann.AttrID); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := loop.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Positives != 105 {
		t.Errorf("positives = %d, want seed 100 + confirmed 5", stats.Positives)
	}
}

func TestFeedbackLoopErrors(t *testing.T) {
	u := nassim.BuildUDM()
	asr, err := nassim.AssimilateVendor(context.Background(), "H3C", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := nassim.NewMapper(u, nassim.ModelNetBERT)
	loop := nassim.NewFeedbackLoop(nb, asr.VDM, u, nil, 10, 1, 1)
	if err := loop.Confirm(nassim.Parameter{Corpus: 0, Name: "x"}, "no.such.attr"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := loop.Retrain(); err == nil {
		t.Error("empty retrain accepted")
	}
	// Non-fine-tunable mapper: confirmations work, retrain fails.
	ir, _ := nassim.NewMapper(u, nassim.ModelIR)
	irLoop := nassim.NewFeedbackLoop(ir, asr.VDM, u, nil, 10, 1, 1)
	anns := nassim.GroundTruthAnnotations(asr.Model, 1, 1)
	if len(anns) == 0 {
		t.Skip("no annotations at this scale")
	}
	if err := irLoop.Confirm(anns[0].Param, anns[0].AttrID); err != nil {
		t.Fatal(err)
	}
	if _, err := irLoop.Retrain(); err == nil {
		t.Error("IR retrain accepted")
	}
}
