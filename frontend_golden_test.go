package nassim_test

// Golden tests for the parallel/interned front end (the RecommendNaive
// pattern from the mapper): on every built-in vendor manual, the parallel
// byte-tokenizer parse path and the memoized/parallel empirical validator
// must produce artifacts identical to the sequential path — same corpus
// JSON bytes, same VDM, same empirical report.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"nassim"
	"nassim/internal/empirical"
)

// corporaJSON renders a parse result's corpora to canonical JSON bytes.
func corporaJSON(t *testing.T, pr *nassim.ParseResult) []byte {
	t.Helper()
	data, err := json.Marshal(pr.Corpora)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFrontendParseGolden parses each vendor manual sequentially and with
// an 8-worker pool, requiring byte-identical corpora, identical hierarchy
// edges, and identical completeness reports.
func TestFrontendParseGolden(t *testing.T) {
	ctx := context.Background()
	for _, vendor := range nassim.Vendors() {
		vendor := vendor
		t.Run(vendor, func(t *testing.T) {
			m, err := nassim.SyntheticModel(vendor, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			pages := nassim.SyntheticManual(m)
			seq, err := nassim.ParseManualWorkers(ctx, vendor, pages, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := nassim.ParseManualWorkers(ctx, vendor, pages, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq.Corpora) == 0 {
				t.Fatal("no corpora parsed")
			}
			if string(corporaJSON(t, seq)) != string(corporaJSON(t, par)) {
				t.Error("parallel parse produced different corpus bytes")
			}
			if !reflect.DeepEqual(seq.Hierarchy, par.Hierarchy) {
				t.Errorf("hierarchy edges differ: %d vs %d", len(seq.Hierarchy), len(par.Hierarchy))
			}
			if !reflect.DeepEqual(seq.Completeness, par.Completeness) {
				t.Error("completeness reports differ")
			}
		})
	}
}

// TestFrontendVDMAndEmpiricalGolden drives each vendor through parse →
// VDM → empirical validation on both paths and requires identical VDM
// bytes and identical reports (for vendors with a config corpus).
func TestFrontendVDMAndEmpiricalGolden(t *testing.T) {
	ctx := context.Background()
	for _, vendor := range nassim.Vendors() {
		vendor := vendor
		t.Run(vendor, func(t *testing.T) {
			m, err := nassim.SyntheticModel(vendor, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			pages := nassim.SyntheticManual(m)
			build := func(workers int) (*nassim.VDM, []byte) {
				pr, err := nassim.ParseManualWorkers(ctx, vendor, pages, workers)
				if err != nil {
					t.Fatal(err)
				}
				v, _ := nassim.BuildVDM(ctx, vendor, pr.Corpora, pr.Hierarchy)
				nassim.ApplyCorrections(pr.Corpora, nassim.ExpertCorrections(m, v.InvalidCLIs))
				v, _ = nassim.BuildVDM(ctx, vendor, pr.Corpora, pr.Hierarchy)
				raw, err := nassim.MarshalVDM(v)
				if err != nil {
					t.Fatal(err)
				}
				return v, raw
			}
			vSeq, rawSeq := build(1)
			vPar, rawPar := build(8)
			if string(rawSeq) != string(rawPar) {
				t.Fatal("VDMs differ between sequential and parallel parse paths")
			}

			files, ok := nassim.SyntheticConfigs(m, 0.05)
			if !ok {
				return // vendor without a synthetic config corpus
			}
			want := empirical.ValidateConfigsNaive(ctx, vSeq, files)
			for _, workers := range []int{1, 8} {
				got := nassim.ValidateConfigsWorkers(ctx, vPar, files, workers)
				if want.Files != got.Files || want.TotalLines != got.TotalLines ||
					want.UniqueLines != got.UniqueLines || want.MatchedLines != got.MatchedLines {
					t.Fatalf("workers=%d: report counts differ: want %v, got %v", workers, want, got)
				}
				if !reflect.DeepEqual(want.UsedCorpora, got.UsedCorpora) {
					t.Fatalf("workers=%d: used corpora differ", workers)
				}
				if !reflect.DeepEqual(want.Failures, got.Failures) {
					t.Fatalf("workers=%d: failures differ", workers)
				}
			}
		})
	}
}
