package nassim_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"nassim"
	"nassim/internal/empirical"
	"nassim/internal/pipeline"
)

// The chaos suite drives the full assimilation pipeline against
// fault-injected device transports (see resilience.go). Tests use the
// standard chaos profile's fault rates and flap window but shrink the
// latency-spike magnitude: spike *duration* only stretches wall time — the
// fault schedule and every retry decision depend on the seeded draws, not
// on how long a spike lasts — so a 2ms spike exercises exactly the code
// paths of a 200ms one.
func chaosProfile(seed uint64) nassim.ChaosProfile {
	p := nassim.StandardChaosProfile(seed)
	p.Latency = 2 * time.Millisecond
	return p
}

func runChaos(t *testing.T, seed uint64, workers int) *nassim.Result {
	t.Helper()
	p := chaosProfile(seed)
	res, err := nassim.Assimilate(context.Background(), nassim.Options{
		Scale: 0.02, Workers: workers, LiveTest: true, Chaos: &p, Seed: 9})
	if err != nil {
		t.Fatalf("chaos run (seed %d, %d workers): %v", seed, workers, err)
	}
	return res
}

// chaosFingerprint reduces a chaos run to its deterministic observable
// surface. LiveResult.Err strings embed the ephemeral port of that run's
// device server, so errors are fingerprinted as presence booleans; every
// other field — counts, per-instance outcomes, generated config lines,
// degradation — must be byte-identical across runs with the same seed.
func chaosFingerprint(t *testing.T, res *nassim.Result) string {
	t.Helper()
	var b strings.Builder
	for _, asr := range res.Results {
		if asr == nil {
			t.Fatal("nil vendor result in chaos run")
		}
		lr := asr.Live
		if lr == nil {
			t.Fatalf("%s: no live report", asr.Model.Vendor)
		}
		fmt.Fprintf(&b, "%s tested=%d accepted=%d verified=%d degraded=%v reason=%q failures=%d\n",
			asr.Model.Vendor, lr.Tested, lr.Accepted, lr.Verified,
			lr.Degraded, lr.DegradedReason, lr.ExchangeFailures)
		for _, r := range lr.Results {
			fmt.Fprintf(&b, "  %d %q accepted=%v verified=%v err=%v\n",
				r.Corpus, r.Instance, r.Accepted, r.Verified, r.Err != "")
		}
		for _, line := range lr.NewConfigLines {
			fmt.Fprintf(&b, "  + %s\n", line)
		}
	}
	return b.String()
}

// TestChaosAllVendorsComplete is the headline robustness contract: under
// the standard chaos profile (5% resets, 10% latency spikes, one flap
// window) the four vendor corpora assimilate end to end with zero hard
// failures — the resilient client absorbs every injected fault — and no
// goroutines leak once the run's chaos transports are torn down.
func TestChaosAllVendorsComplete(t *testing.T) {
	before := runtime.NumGoroutine()
	res := runChaos(t, 42, 4)
	if len(res.Results) != 4 {
		t.Fatalf("got %d vendor results, want 4", len(res.Results))
	}
	for _, asr := range res.Results {
		if asr == nil || asr.Live == nil {
			t.Fatal("missing vendor result under chaos")
		}
		if asr.Live.Tested == 0 || asr.Live.Verified == 0 {
			t.Errorf("%s: live testing made no progress: tested=%d verified=%d",
				asr.Model.Vendor, asr.Live.Tested, asr.Live.Verified)
		}
		if asr.Degraded() {
			t.Errorf("%s: degraded under standard profile: %v (retry should absorb these faults)",
				asr.Model.Vendor, asr.DegradedStages)
		}
	}
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestChaosDeterministicForFixedSeed: the same chaos seed yields a
// byte-identical run fingerprint — twice at 4 workers, and again
// sequentially, pinning the claim that per-vendor seed derivation makes
// fault schedules independent of scheduling.
func TestChaosDeterministicForFixedSeed(t *testing.T) {
	first := chaosFingerprint(t, runChaos(t, 7, 4))
	if again := chaosFingerprint(t, runChaos(t, 7, 4)); again != first {
		t.Errorf("same seed, same workers: fingerprints differ\n--- run 1\n%s--- run 2\n%s", first, again)
	}
	if seq := chaosFingerprint(t, runChaos(t, 7, 1)); seq != first {
		t.Errorf("same seed, 1 worker: fingerprint differs from 4 workers\n--- 4w\n%s--- 1w\n%s", first, seq)
	}
	if other := chaosFingerprint(t, runChaos(t, 8, 4)); other == first {
		t.Error("different seeds produced identical fingerprints — faults not actually injected?")
	}
}

// TestChaosDeadDeviceDegradesViaBreaker: a device that drops every
// connection must not fail the run. The client's circuit breaker opens
// after the failure threshold, live testing degrades with the
// machine-readable breaker_open reason, and the other pipeline stages
// still deliver their artifacts.
func TestChaosDeadDeviceDegradesViaBreaker(t *testing.T) {
	p := nassim.DeadDeviceProfile()
	res, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"Cisco"}, Scale: 0.02, Workers: 1, LiveTest: true, Chaos: &p})
	if err != nil {
		t.Fatalf("dead device must degrade, not fail: %v", err)
	}
	asr := res.Results[0]
	if asr.VDM == nil {
		t.Fatal("earlier stages lost their artifacts")
	}
	if !asr.Degraded() {
		t.Fatal("run against dead device not marked degraded")
	}
	if got := asr.DegradedStages[pipeline.StageLiveTest]; got != empirical.DegradedBreakerOpen {
		t.Errorf("degraded reason = %q, want %q", got, empirical.DegradedBreakerOpen)
	}
	lr := asr.Live
	if lr == nil || !lr.Degraded || lr.Verified != 0 {
		t.Errorf("live report: %+v, want degraded with zero verified", lr)
	}
}
