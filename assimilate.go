package nassim

import (
	"context"
	"path/filepath"
	"time"

	"nassim/internal/obsreport"
	"nassim/internal/pipeline"
	"nassim/internal/telemetry"
	"nassim/internal/vdm"
)

// This file is the engine-driven entry point: Assimilate drives the staged
// pipeline (internal/pipeline) over any number of vendors, with bounded
// per-vendor parallelism, content-hash artifact caching, and cancellation
// at stage boundaries. The synthetic substrates (model, manual, configs,
// device) stand in for the paper's proprietary inputs exactly as in the
// step-by-step API.

// Pipeline engine types re-exported for callers tuning Assimilate.
type (
	// PipelineStage names one engine stage (Parse, SyntaxValidate, ...).
	PipelineStage = pipeline.Stage
	// PipelineCache is the shared in-memory artifact store; pass one cache
	// to successive Assimilate calls to make warm re-runs skip unchanged
	// stages.
	PipelineCache = pipeline.MemStore
	// PipelineStats aggregates stage outcomes (runs vs cache hits) over
	// one Assimilate call.
	PipelineStats = pipeline.RunStats
	// StageTimer accumulates per-stage wall time across runs.
	StageTimer = telemetry.StageTimer
)

// NewPipelineCache returns an empty shareable artifact cache.
func NewPipelineCache() *PipelineCache { return pipeline.NewMemStore() }

// NewStageTimer returns an empty stage timer for Options.Timer.
func NewStageTimer() *StageTimer { return telemetry.NewStageTimer() }

// PipelineStages lists the engine's stages in execution order.
func PipelineStages() []PipelineStage { return pipeline.Stages() }

// Options configures one Assimilate run.
type Options struct {
	// Vendors to assimilate; empty runs the four built-in vendors in
	// Table 4 order.
	Vendors []string
	// Scale is the synthetic corpus scale (1.0 = paper scale); <= 0
	// defaults to 0.1.
	Scale float64
	// Workers bounds per-vendor parallelism; <= 1 runs sequentially.
	// Results are deterministic and identical for any worker count.
	Workers int
	// StageWorkers bounds the intra-stage fan-out of the front-end stages
	// (manual pages parsed concurrently, configuration files matched
	// concurrently) within each vendor job; <= 1 keeps those stages
	// sequential. Results are identical for any value.
	StageWorkers int
	// Cache is the artifact store consulted before every stage; nil uses a
	// fresh store (no reuse across calls).
	Cache *PipelineCache
	// CacheDir, when set, mirrors the expensive artifacts (parse output,
	// derived VDM) on disk so later processes warm-start from them.
	CacheDir string
	// Validate runs empirical configuration validation (§5.3, Figure 8)
	// for vendors with a synthetic configuration corpus.
	Validate bool
	// LiveTest exercises commands unused by the configuration corpus
	// against an in-process simulated device (§5.3).
	LiveTest        bool
	PathsPerCommand int    // CGM paths instantiated per live-tested command (default 1)
	Seed            uint64 // live-test instantiation seed
	// Chaos, with LiveTest, serves each vendor's device over TCP behind a
	// fault-injecting listener and reaches it through a resilient client
	// (retry, circuit breaking, session replay). Each vendor derives its
	// own fault/jitter seeds from the profile's, so runs are deterministic
	// for any worker count. A device that stays unreachable degrades its
	// vendor's live report (see AssimilationResult.DegradedStages) instead
	// of failing the run.
	Chaos *ChaosProfile
	// LiveFailureBudget is the live stage's transport-failure budget; see
	// the pipeline Job field of the same name. 0 takes the default.
	LiveFailureBudget int
	// Timer, when set, accumulates per-stage wall time of executed
	// (non-cached) stages.
	Timer *StageTimer
	// Report builds the run observatory's per-run manifest: input content
	// hashes, per-stage outcomes and attempts, cache hit/miss, worker-pool
	// utilization, metrics delta, and a span summary, with every duration
	// and timestamp quarantined in the manifest's timing block. The result
	// carries it, /debug/lastrun serves it, and with CacheDir set it is
	// also written under CacheDir/manifests/.
	Report bool
	// ProfileStages, when set, brackets every actual stage execution with
	// pprof CPU + heap captures written to this directory (the flight
	// recorder). CPU profiling is process-global, so overlapping stages
	// serialize on the recorder; run with Workers <= 1 for faithful
	// per-stage attribution.
	ProfileStages string
	// StageHook observes actual stage executions (cache hits never fire
	// it): it is called immediately before each execution attempt and the
	// returned func — which may be nil — runs when the attempt finishes.
	// The serving daemon streams live per-stage progress through it; it
	// composes with ProfileStages (both hooks fire). The hook is called
	// from the engine's worker goroutines, so it must be safe for
	// concurrent use.
	StageHook func(vendor string, stage PipelineStage) func()
}

// Result is the outcome of one Assimilate run.
type Result struct {
	// Results holds one entry per requested vendor, in request order. A
	// vendor whose job failed or was cancelled leaves a nil entry and the
	// run's error says why.
	Results []*AssimilationResult
	// Stats aggregates stage outcomes: Stats.Skips() > 0 means the
	// artifact cache satisfied stages without re-running them.
	Stats PipelineStats
	// Report is the per-run manifest when Options.Report was set.
	Report *RunReport
	// Profiles lists the flight recorder's capture files when
	// Options.ProfileStages was set.
	Profiles []string
}

// Assimilate runs the complete SNA pipeline for the requested vendors:
// render each synthetic manual, parse it, validate the syntax, apply the
// (simulated) expert corrections, derive the view hierarchy, and
// optionally validate against configurations and a live device. Vendors
// are assimilated concurrently up to Options.Workers; cancelling ctx stops
// the run at the next stage boundary.
func Assimilate(ctx context.Context, opts Options) (*Result, error) {
	vendors := opts.Vendors
	if len(vendors) == 0 {
		vendors = Vendors()
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 0.1
	}
	opts.Scale = scale
	models := make([]*DeviceModel, len(vendors))
	for i, vend := range vendors {
		m, err := SyntheticModel(vend, scale)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return assimilateModels(ctx, opts, models)
}

// AssimilateVendor is the single-vendor convenience form of Assimilate.
func AssimilateVendor(ctx context.Context, vendor string, scale float64) (*AssimilationResult, error) {
	res, err := Assimilate(ctx, Options{Vendors: []string{vendor}, Scale: scale})
	if err != nil {
		return nil, err
	}
	return res.Results[0], nil
}

// AssimilateModel runs the pipeline on an existing ground-truth model
// (evaluation code mutates models before assimilating them).
func AssimilateModel(ctx context.Context, m *DeviceModel) (*AssimilationResult, error) {
	res, err := assimilateModels(ctx, Options{}, []*DeviceModel{m})
	if err != nil {
		return nil, err
	}
	return res.Results[0], nil
}

// assimilateModels builds one engine job per model and runs them.
func assimilateModels(ctx context.Context, opts Options, models []*DeviceModel) (*Result, error) {
	cfg := pipeline.Config{
		Workers: opts.Workers, StageWorkers: opts.StageWorkers,
		Store: storeOrNil(opts.Cache), CacheDir: opts.CacheDir, Timer: opts.Timer,
	}
	var flight *obsreport.FlightRecorder
	if opts.ProfileStages != "" {
		flight = obsreport.NewFlightRecorder(opts.ProfileStages)
		cfg.StageHook = flight.StageHook()
	}
	if opts.StageHook != nil {
		cfg.StageHook = chainStageHooks(cfg.StageHook, opts.StageHook)
	}
	eng, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]pipeline.Job, len(models))
	// closers tears down the per-vendor chaos transports (server + client)
	// once the run is over.
	var closers []func()
	for i, m := range models {
		job := pipeline.Job{
			Vendor: string(m.Vendor),
			Pages:  SyntheticManual(m),
			Correct: func(flagged []vdm.InvalidCLI) []Correction {
				return ExpertCorrections(m, flagged)
			},
		}
		if opts.Validate {
			if files, ok := SyntheticConfigs(m, opts.Scale); ok {
				job.ConfigFiles = files
			}
		}
		if opts.LiveTest {
			dev, err := NewDevice(m)
			if err != nil {
				return nil, err
			}
			if opts.Chaos != nil {
				p := *opts.Chaos
				p.Seed = chaosSeed(opts.Chaos.Seed, i)
				srv, _, err := ServeDeviceChaos(dev, "127.0.0.1:0", p)
				if err != nil {
					closeAll(closers)
					return nil, err
				}
				// An assimilation run is thousands of exchanges, so the
				// interactive default retry budget would run dry mid-corpus;
				// the breaker still guards against a device that stays dead.
				rc := DialDeviceResilient(srv.Addr(), ResilientOptions{
					Seed:  chaosSeed(opts.Chaos.Seed, i) ^ 0xc1a05,
					Retry: RetryPolicy{Budget: -1},
				})
				closers = append(closers, func() { rc.Close(); srv.Close() })
				job.Exec = rc
			} else {
				job.Exec = SessionExecutor(dev.NewSession())
			}
			job.ShowCmd = dev.ShowConfigCommand()
			job.PathsPerCommand = opts.PathsPerCommand
			job.Seed = opts.Seed
			job.LiveFailureBudget = opts.LiveFailureBudget
		}
		jobs[i] = job
	}
	var collector *obsreport.Collector
	if opts.Report {
		collector = obsreport.NewCollector()
	}
	start := time.Now()
	jrs, runErr := eng.Run(ctx, jobs)
	closeAll(closers)
	res := &Result{
		Results: make([]*AssimilationResult, len(jrs)),
		Stats:   pipeline.Summarize(jrs, time.Since(start)),
	}
	if collector != nil {
		info := obsreport.RunInfo{
			Workers: opts.Workers, StageWorkers: opts.StageWorkers,
			Scale: opts.Scale, Seed: opts.Seed,
			Validate: opts.Validate, LiveTest: opts.LiveTest,
			Chaos: opts.Chaos != nil, LiveFailureBudget: opts.LiveFailureBudget,
		}
		for _, m := range models {
			info.Vendors = append(info.Vendors, string(m.Vendor))
		}
		res.Report = collector.Build(info, jrs)
		telemetry.SetLastRun(res.Report)
		if opts.CacheDir != "" {
			dir := filepath.Join(opts.CacheDir, "manifests")
			if err := res.Report.WriteFile(filepath.Join(dir, res.Report.RunID+".json")); err != nil {
				Logger("obsreport").Warn("manifest write failed", "err", err)
			} else if err := res.Report.WriteFile(filepath.Join(dir, "latest.json")); err != nil {
				Logger("obsreport").Warn("manifest write failed", "err", err)
			}
		}
	}
	if flight != nil {
		res.Profiles = flight.Captures()
		if err := flight.Err(); err != nil {
			Logger("obsreport").Warn("flight recorder", "err", err)
		}
	}
	for i, jr := range jrs {
		if jr == nil {
			continue
		}
		res.Results[i] = &AssimilationResult{
			Model: models[i],
			Parsed: &ParseResult{Corpora: jr.Corpora, Hierarchy: jr.Hierarchy,
				Completeness: jr.Completeness},
			VDM:                  jr.VDM,
			DeriveReport:         jr.Derive,
			PreCorrectionInvalid: len(jr.Invalid),
			CorrectionsApplied:   jr.CorrectionsApplied,
			Empirical:            jr.Empirical,
			Live:                 jr.Live,
			StagesRun:            jr.Ran,
			StagesSkipped:        jr.Skipped,
			DegradedStages:       jr.DegradedStages,
			PagesHash:            jr.PagesHash,
			ConfigHash:           jr.ConfigHash,
		}
	}
	return res, runErr
}

func closeAll(closers []func()) {
	for _, c := range closers {
		c()
	}
}

// chainStageHooks composes stage observers: both fire before the stage,
// their finish funcs run in reverse order after it. a may be nil.
func chainStageHooks(a, b func(string, PipelineStage) func()) func(string, PipelineStage) func() {
	if a == nil {
		return b
	}
	return func(vendor string, stage PipelineStage) func() {
		fa, fb := a(vendor, stage), b(vendor, stage)
		return func() {
			if fb != nil {
				fb()
			}
			if fa != nil {
				fa()
			}
		}
	}
}

// storeOrNil avoids handing the engine a typed-nil Store interface.
func storeOrNil(c *PipelineCache) pipeline.Store {
	if c == nil {
		return nil
	}
	return c
}
