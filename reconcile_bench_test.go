package nassim_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"nassim"
)

// BenchmarkReconcileFleet measures one reconcile cycle over a 64-device
// mixed-vendor fleet running the combined churn+skew+flap scenario: probe
// every device through its resilient client, classify drift, re-validate
// only the invalidated pipeline stages, and build the plan. The first
// (unmeasured) cycle warms the artifact cache, so measured cycles show the
// steady-state economy. With NASSIM_RECONCILE_BENCH_OUT set (make
// bench-reconcile) the figures export as BENCH_reconcile.json (schema
// nassim-reconcile-bench/v1).
func BenchmarkReconcileFleet(b *testing.B) {
	sc, err := nassim.FleetScenarioByName("churn+skew+flap")
	if err != nil {
		b.Fatal(err)
	}
	const devices = 64
	ctx := context.Background()
	r, err := nassim.NewFleetReconciler(ctx, nassim.ReconcilerConfig{
		Spec:        nassim.FleetSpec{Devices: devices, Scale: 0.02, Seed: 17, Scenario: sc},
		MaxParallel: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunCycle(ctx); err != nil { // warm the artifact cache
		b.Fatal(err)
	}

	cycleLat := make([]time.Duration, 0, b.N)
	var last *nassim.ReconcileCycle
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		cr, err := r.RunCycle(ctx)
		if err != nil {
			b.Fatal(err)
		}
		cycleLat = append(cycleLat, cr.Wall)
		last = cr
	}
	elapsed := time.Since(start)
	b.StopTimer()

	p50, _ := latencyQuantiles(cycleLat)
	var total time.Duration
	for _, d := range cycleLat {
		total += d
	}
	meanMs := float64(total.Microseconds()) / 1e3 / float64(len(cycleLat))
	probesPerSec := float64(devices*b.N) / elapsed.Seconds()
	b.ReportMetric(float64(p50.Microseconds())/1e3, "cycle_p50_ms")
	b.ReportMetric(probesPerSec, "probes/sec")
	b.ReportMetric(last.CacheHitRatio(), "cache_hit_ratio")

	out := os.Getenv("NASSIM_RECONCILE_BENCH_OUT")
	if out == "" {
		return
	}
	doc := struct {
		Schema        string  `json:"schema"`
		N             int     `json:"n"`
		Devices       int     `json:"devices"`
		Scenario      string  `json:"scenario"`
		CycleP50Ms    float64 `json:"cycle_p50_ms"`
		CycleMeanMs   float64 `json:"cycle_mean_ms"`
		ProbesPerSec  float64 `json:"probes_per_sec"`
		ProbeP50Ms    float64 `json:"probe_p50_ms"`
		ProbeP99Ms    float64 `json:"probe_p99_ms"`
		CacheHitRatio float64 `json:"cache_hit_ratio"`
		DriftActions  int     `json:"drift_actions"`
		Health        struct {
			Converged   int `json:"converged"`
			Drifted     int `json:"drifted"`
			Degraded    int `json:"degraded"`
			Unreachable int `json:"unreachable"`
		} `json:"health"`
	}{
		Schema: "nassim-reconcile-bench/v1", N: len(cycleLat),
		Devices: devices, Scenario: sc.Name,
		CycleP50Ms:    float64(p50.Microseconds()) / 1e3,
		CycleMeanMs:   meanMs,
		ProbesPerSec:  probesPerSec,
		ProbeP50Ms:    float64(last.ProbeP50.Microseconds()) / 1e3,
		ProbeP99Ms:    float64(last.ProbeP99.Microseconds()) / 1e3,
		CacheHitRatio: last.CacheHitRatio(),
		DriftActions:  len(last.Plan.Actions),
	}
	doc.Health.Converged = last.Health[nassim.FleetConverged]
	doc.Health.Drifted = last.Health[nassim.FleetDrifted]
	doc.Health.Degraded = last.Health[nassim.FleetDegraded]
	doc.Health.Unreachable = last.Health[nassim.FleetUnreachable]
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
