// Package nassim is a Go reproduction of NAssim (SIGCOMM 2022):
// "Software-Defined Network Assimilation: Bridging the Last Mile Towards
// Centralized Network Configuration Management with NAssim".
//
// NAssim assists NetOps engineers in Software-defined Network Assimilation
// (SNA): on-boarding heterogeneous devices — legacy and new-vendor — into an
// SDN network whose controller speaks a Unified Device Model (UDM).
//
// The one-call entry point drives the staged pipeline engine
// (internal/pipeline) over any number of vendors concurrently, with
// artifact caching and context cancellation:
//
//	res, err := nassim.Assimilate(ctx, nassim.Options{Scale: 0.1, Workers: 4})
//
// The step-by-step API mirrors the paper's two phases for callers that
// want to drive individual stages:
//
// VDM construction phase:
//
//	pages  := ...                                  // vendor manual pages (HTML)
//	parsed, _ := nassim.ParseManual(ctx, "Huawei", pages)
//	// review parsed.Completeness, fix the parser, iterate (TDD, §4)
//	model, report := nassim.BuildVDM(ctx, "Huawei", parsed.Corpora, parsed.Hierarchy)
//	// review model.InvalidCLIs, apply expert corrections, rebuild (§5.1)
//	empirical := nassim.ValidateConfigs(ctx, model, configFiles)   // §5.3
//
// VDM-UDM mapping phase:
//
//	u := nassim.BuildUDM()
//	m, _ := nassim.NewMapper(u, nassim.ModelNetBERT)
//	m.FineTune(model, u, trainAnnotations, 10, 1, seed)       // §6.3
//	recs := m.Recommend(nassim.ExtractContext(model, param), 10)
//
// The proprietary inputs of the paper (vendor manuals, production
// configuration files, real devices, the expert-built UDM) are replaced by
// faithful synthetic substrates generated from one ground-truth device
// model; see DESIGN.md for the substitution table. The Synthetic* helpers
// below expose them.
package nassim

import (
	"context"
	"fmt"
	"time"

	"nassim/internal/configgen"
	"nassim/internal/corpus"
	"nassim/internal/device"
	"nassim/internal/devmodel"
	"nassim/internal/empirical"
	"nassim/internal/hierarchy"
	"nassim/internal/mapper"
	"nassim/internal/nlp"
	"nassim/internal/parser"
	"nassim/internal/pipeline"
	"nassim/internal/telemetry"
	"nassim/internal/udm"
	"nassim/internal/vdm"
)

// Re-exported core types. The heavy lifting lives in internal packages;
// these aliases are the supported public surface.
type (
	// Page is one manual page to parse (HTML + source URL).
	Page = parser.Page
	// Corpus is one parsed manual page in the vendor-independent format.
	Corpus = corpus.Corpus
	// VDM is the validated vendor-specific device model.
	VDM = vdm.VDM
	// Parameter addresses one placeholder parameter of one corpus.
	Parameter = vdm.Parameter
	// UDM is the controller's unified device model.
	UDM = udm.Tree
	// Edge is an explicit view-hierarchy edge (vendors like Nokia publish
	// them in the manual).
	Edge = hierarchy.Edge
	// DeriveReport summarizes hierarchy derivation.
	DeriveReport = hierarchy.Report
	// CompletenessReport is the parser TDD violation report.
	CompletenessReport = corpus.Report
	// EmpiricalReport summarizes configuration-file validation.
	EmpiricalReport = empirical.Report
	// LiveReport summarizes generated-instance testing on a device.
	LiveReport = empirical.LiveReport
	// ConfigFile is one running-device configuration file.
	ConfigFile = configgen.File
	// Annotation is one expert-labelled VDM-parameter/UDM-attribute pair.
	Annotation = mapper.Annotation
	// Recommendation is one ranked UDM attribute for a VDM parameter.
	Recommendation = mapper.Recommendation
	// ParamContext is the extracted semantic context of a VDM parameter.
	ParamContext = mapper.ParamContext
	// EvalResult holds recall@top-k and MRR for one model.
	EvalResult = mapper.EvalResult
	// FineTuneStats reports what NetBERT domain adaptation learned.
	FineTuneStats = nlp.FineTuneStats
	// TrainExample is one fine-tuning pair (VDM-side and UDM-side context
	// tokens of an expert-confirmed mapping).
	TrainExample = nlp.TrainExample
	// DeviceModel is a ground-truth device model (synthetic substrate).
	DeviceModel = devmodel.Model
	// Device is a simulated configurable network device.
	Device = device.Device
	// DeviceClient is a CLI session against a device served over TCP.
	DeviceClient = device.Client
	// DeviceServer serves a simulated device over TCP.
	DeviceServer = device.Server
)

// Vendors lists the vendors with built-in manual parsers, in Table 4 order.
func Vendors() []string { return parser.Vendors() }

// CorpusID formats a corpus index as the template-index ID used by a VDM's
// instance-matching index.
func CorpusID(i int) string { return vdm.CorpusID(i) }

// ParseResult is the outcome of parsing one vendor manual.
type ParseResult struct {
	Corpora      []Corpus
	Hierarchy    []Edge // explicit view edges, when the vendor publishes them
	Completeness *CompletenessReport
	// Pool reports the parse worker pool's per-worker busy time and
	// utilization — observational only, excluded from serialization and
	// golden comparisons.
	Pool PoolStats `json:"-"`
}

// PoolStats is one stage-internal worker pool's busy-time accounting.
type PoolStats = telemetry.PoolStats

// ParseManual parses vendor manual pages into the vendor-independent corpus
// format and runs the Appendix B completeness tests (the parser TDD loop's
// validating() step). Cancellation via ctx is honored between pages.
func ParseManual(ctx context.Context, vendor string, pages []Page) (*ParseResult, error) {
	return ParseManualWorkers(ctx, vendor, pages, 0)
}

// ParseManualWorkers is ParseManual with a bounded per-page worker pool
// (values below 2 parse sequentially). The result is identical at any
// worker count.
func ParseManualWorkers(ctx context.Context, vendor string, pages []Page, workers int) (*ParseResult, error) {
	p, err := parser.New(vendor)
	if err != nil {
		return nil, err
	}
	p.SetWorkers(workers)
	res, rep := p.ParseAndValidate(ctx, pages)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	edges := make([]Edge, len(res.Hierarchy))
	for i, e := range res.Hierarchy {
		edges[i] = Edge{Parent: e.Parent, Child: e.Child}
	}
	return &ParseResult{Corpora: res.Corpora, Hierarchy: edges, Completeness: rep,
		Pool: res.Pool}, nil
}

// Correction is one expert fix of a manual's CLI template, applied after
// formal syntax validation flags it (§5.1: experts "conduct targeted
// interventions to correct them").
type Correction = pipeline.Correction

// ApplyCorrections replaces the flagged primary CLI of each addressed
// corpus in place, preserving any non-flagged sibling CLIs the corpus
// documents. It returns how many corrections were applied; corrections
// addressing out-of-range corpus indices are rejected and listed in the
// returned error (the in-range ones still apply).
func ApplyCorrections(corpora []Corpus, fixes []Correction) (int, error) {
	return pipeline.ApplyCorrections(corpora, fixes)
}

// BuildVDM runs the Validator's syntax-validation and hierarchy-derivation
// stages over a parsed corpus, producing the validated VDM (§5.1, §5.2).
// Cancellation via ctx is honored between corpora.
func BuildVDM(ctx context.Context, vendor string, corpora []Corpus, explicit []Edge) (*VDM, *DeriveReport) {
	return hierarchy.Derive(ctx, vendor, corpora, explicit, nil)
}

// ValidateHierarchy checks the structural consistency of a derived VDM.
func ValidateHierarchy(v *VDM) []hierarchy.Issue {
	return hierarchy.ValidateHierarchy(v)
}

// MarshalVDM serializes a validated VDM (with its derived hierarchy) so an
// assimilation run's output can be stored and reloaded.
func MarshalVDM(v *VDM) ([]byte, error) { return v.Marshal() }

// UnmarshalVDM reloads a persisted VDM, rebuilding its template index.
func UnmarshalVDM(data []byte) (*VDM, error) { return vdm.Unmarshal(data, nil) }

// ValidateConfigs runs the Figure 8 empirical-data validation workflow.
// Cancellation via ctx is honored between files.
func ValidateConfigs(ctx context.Context, v *VDM, files []ConfigFile) *EmpiricalReport {
	return empirical.ValidateConfigs(ctx, v, files)
}

// ValidateConfigsWorkers is ValidateConfigs with a bounded per-file worker
// pool (values below 2 validate sequentially). The report is identical at
// any worker count.
func ValidateConfigsWorkers(ctx context.Context, v *VDM, files []ConfigFile, workers int) *EmpiricalReport {
	return empirical.ValidateConfigsOpts(ctx, v, files, empirical.Options{Workers: workers})
}

// TestUnusedCommands exercises commands unused by empirical configurations
// against a (simulated) device reachable through exec, verifying accepted
// instances via showCmd (§5.3). Cancellation via ctx is honored between
// commands and, for context-aware executors, inside each device exchange.
func TestUnusedCommands(ctx context.Context, v *VDM, used map[int]bool, exec empirical.Executor,
	showCmd string, pathsPerCommand int, seed uint64) (*LiveReport, error) {
	return empirical.TestUnusedCommands(ctx, v, used, exec, showCmd, pathsPerCommand, seed)
}

// SessionExecutor adapts an in-process device session for TestUnusedCommands.
func SessionExecutor(s *device.Session) empirical.Executor {
	return empirical.SessionExecutor(s)
}

// ModelKind selects a Mapper model combination (§7.3's comparison).
type ModelKind string

// The seven model combinations of Tables 5/6.
const (
	ModelIR        ModelKind = "IR"
	ModelSimCSE    ModelKind = "SimCSE"
	ModelSBERT     ModelKind = "SBERT"
	ModelNetBERT   ModelKind = "NetBERT"
	ModelIRSimCSE  ModelKind = "IR+SimCSE"
	ModelIRSBERT   ModelKind = "IR+SBERT"
	ModelIRNetBERT ModelKind = "IR+NetBERT"
)

// AllModelKinds lists the model combinations in Table 5 row order.
func AllModelKinds() []ModelKind {
	return []ModelKind{ModelIR, ModelSimCSE, ModelSBERT,
		ModelIRSimCSE, ModelIRSBERT, ModelNetBERT, ModelIRNetBERT}
}

// EncoderDim is the sentence-embedding dimensionality of the simulated
// encoders.
const EncoderDim = 96

// Mapper recommends UDM attributes for VDM parameters. It wraps the
// underlying model and, for NetBERT kinds, the fine-tunable encoder.
type Mapper struct {
	*mapper.Mapper
	netbert *nlp.NetBERT
}

// MapperOption re-exports mapper.Option for NewMapper callers.
type MapperOption = mapper.Option

// MapperMatrixSchema is the nassim-art schema tag of the saved
// precombined mapper-matrix artifact.
const MapperMatrixSchema = mapper.MatrixSchema

// WithMatrixArtifact primes a mapper from a saved precombined-matrix
// artifact (Mapper.ExportMatrix); mismatched artifacts are ignored.
func WithMatrixArtifact(data []byte) MapperOption { return mapper.WithMatrixArtifact(data) }

// WithFloatScoring disables the int8-quantized candidate prune (the
// scalar-reference configuration the benchmarks compare against).
func WithFloatScoring() MapperOption { return mapper.WithFloatScoring() }

// NewMapper builds a Mapper of the given kind over a UDM.
func NewMapper(u *UDM, kind ModelKind, opts ...MapperOption) (*Mapper, error) {
	syn := devmodel.GeneralSynonyms()
	var enc nlp.Encoder
	var nb *nlp.NetBERT
	useIR := false
	switch kind {
	case ModelIR:
		useIR = true
	case ModelSimCSE:
		enc = nlp.NewSimCSE(EncoderDim, syn)
	case ModelSBERT:
		enc = nlp.NewSBERT(EncoderDim, syn)
	case ModelNetBERT:
		nb = nlp.NewNetBERT(EncoderDim, syn)
		enc = nb
	case ModelIRSimCSE:
		useIR = true
		enc = nlp.NewSimCSE(EncoderDim, syn)
	case ModelIRSBERT:
		useIR = true
		enc = nlp.NewSBERT(EncoderDim, syn)
	case ModelIRNetBERT:
		useIR = true
		nb = nlp.NewNetBERT(EncoderDim, syn)
		enc = nb
	default:
		return nil, fmt.Errorf("nassim: unknown mapper model %q", kind)
	}
	m, err := mapper.New(u, enc, useIR, opts...)
	if err != nil {
		return nil, err
	}
	return &Mapper{Mapper: m, netbert: nb}, nil
}

// FineTune domain-adapts a NetBERT-backed mapper on annotated pairs
// (negRatio-fold negative sampling, the given number of epochs) and
// refreshes the UDM embeddings. It fails for non-NetBERT mappers.
func (m *Mapper) FineTune(v *VDM, u *UDM, train []Annotation, negRatio, epochs int, seed uint64) (FineTuneStats, error) {
	return m.FineTuneExamples(mapper.BuildTrainExamples(v, u, train), negRatio, epochs, seed)
}

// FineTuneExamples is FineTune over pre-built training pairs — use it to
// mix annotations from several previously assimilated vendors (each pair
// is built against its own VDM via BuildTrainingPairs).
func (m *Mapper) FineTuneExamples(examples []TrainExample, negRatio, epochs int, seed uint64) (FineTuneStats, error) {
	if m.netbert == nil {
		return FineTuneStats{}, fmt.Errorf("nassim: model %s is not fine-tunable", m.Name())
	}
	_, span := telemetry.Span(context.Background(), "mapper.finetune",
		"model", m.Name(), "examples", len(examples), "epochs", epochs)
	defer span.End()
	start := time.Now()
	stats := m.netbert.FineTune(examples, negRatio, epochs, seed)
	m.RefreshUDM()
	telemetry.GetCounter("nassim_mapper_finetune_runs_total", "model", m.Name()).Inc()
	telemetry.GetCounter("nassim_mapper_finetune_epochs_total", "model", m.Name()).Add(int64(epochs))
	telemetry.GetHistogram("nassim_mapper_finetune_seconds", nil, "model", m.Name()).
		ObserveDuration(time.Since(start))
	telemetry.Logger(telemetry.ComponentMapper).Debug("fine-tuned encoder",
		"model", m.Name(), "examples", len(examples), "epochs", epochs,
		"elapsed", time.Since(start))
	return stats, nil
}

// BuildTrainingPairs converts annotations into fine-tuning pairs against
// the VDM they were labelled on.
func BuildTrainingPairs(v *VDM, u *UDM, train []Annotation) []TrainExample {
	return mapper.BuildTrainExamples(v, u, train)
}

// ExtractContext collects the semantic context of a VDM parameter (§6.1).
func ExtractContext(v *VDM, p Parameter) ParamContext {
	return mapper.ExtractContext(v, p)
}

// Evaluate measures a mapper against annotations (recall@top-k, MRR).
func Evaluate(m *Mapper, v *VDM, u *UDM, annotations []Annotation, ks []int) EvalResult {
	return mapper.Evaluate(m.Mapper, v, u, annotations, ks)
}

// AccelerationFactor converts a recall@k percentage into the paper's
// headline speedup (89% top-10 recall => experts consult the manual 11% of
// the time => 9.1x).
func AccelerationFactor(recallPercent float64) float64 {
	return mapper.AccelerationFactor(recallPercent)
}

// Explain renders a recommendation list with its semantic context.
func Explain(ctx ParamContext, recs []Recommendation) string {
	return mapper.Explain(ctx, recs)
}
