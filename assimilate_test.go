package nassim_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"nassim"
	"nassim/internal/telemetry"
)

func marshalVDM(t *testing.T, v *nassim.VDM) []byte {
	t.Helper()
	data, err := v.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAssimilateGoldenWarmCache is the end-to-end cache contract over all
// four vendors: a warm re-run against the shared cache must execute zero
// stages (observable both in RunStats and in the stage-skip counter) and
// produce byte-identical marshalled VDMs.
func TestAssimilateGoldenWarmCache(t *testing.T) {
	opts := nassim.Options{Scale: 0.02, Workers: 2, Validate: true,
		Cache: nassim.NewPipelineCache()}

	cold, err := nassim.Assimilate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Skips() != 0 || cold.Stats.Runs() == 0 {
		t.Fatalf("cold stats: %v", cold.Stats)
	}
	golden := make(map[string][]byte)
	for _, asr := range cold.Results {
		golden[string(asr.Model.Vendor)] = marshalVDM(t, asr.VDM)
	}

	skipCounters := func() int64 {
		var n int64
		for _, st := range nassim.PipelineStages() {
			n += telemetry.GetCounter("nassim_pipeline_stage_total",
				"stage", string(st), "outcome", "cache_hit").Value()
		}
		return n
	}
	skipsBefore := skipCounters()

	warm, err := nassim.Assimilate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Runs() != 0 {
		t.Errorf("warm re-run executed stages: %v", warm.Stats)
	}
	if got := skipCounters() - skipsBefore; got != int64(warm.Stats.Skips()) || got == 0 {
		t.Errorf("stage-skip counter advanced by %d, stats say %d skips", got, warm.Stats.Skips())
	}
	for _, asr := range warm.Results {
		if !bytes.Equal(golden[string(asr.Model.Vendor)], marshalVDM(t, asr.VDM)) {
			t.Errorf("%s: warm VDM differs from cold VDM", asr.Model.Vendor)
		}
	}
}

// TestAssimilateParallelMatchesSequential pins the determinism contract:
// a 4-worker run over the four built-in vendors yields VDMs byte-identical
// to a sequential run.
func TestAssimilateParallelMatchesSequential(t *testing.T) {
	seq, err := nassim.Assimilate(context.Background(), nassim.Options{Scale: 0.02, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := nassim.Assimilate(context.Background(), nassim.Options{Scale: 0.02, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("result counts: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		s, p := seq.Results[i], par.Results[i]
		if s.Model.Vendor != p.Model.Vendor {
			t.Fatalf("order differs at %d: %s vs %s", i, s.Model.Vendor, p.Model.Vendor)
		}
		if !bytes.Equal(marshalVDM(t, s.VDM), marshalVDM(t, p.VDM)) {
			t.Errorf("%s: parallel VDM differs from sequential", s.Model.Vendor)
		}
	}
}

// TestAssimilateCancelledContext: a cancelled context aborts the run at a
// stage boundary with context.Canceled and without leaking goroutines.
func TestAssimilateCancelledContext(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := nassim.Assimilate(ctx, nassim.Options{Scale: 0.02, Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, asr := range res.Results {
		if asr != nil {
			t.Errorf("result %d produced despite cancellation", i)
		}
	}
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestAssimilateDiskCache: a fresh process-equivalent (empty memory cache,
// same CacheDir) warm-starts the persisted stages.
func TestAssimilateDiskCache(t *testing.T) {
	dir := t.TempDir()
	cold, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"H3C"}, Scale: 0.02, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"H3C"}, Scale: 0.02, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.StageSkips[nassim.PipelineStages()[0]] != 1 {
		t.Errorf("parse stage not warm-started from disk: %v", warm.Stats)
	}
	if !bytes.Equal(marshalVDM(t, cold.Results[0].VDM), marshalVDM(t, warm.Results[0].VDM)) {
		t.Error("disk-cached VDM differs")
	}
}

// TestAssimilateTimerObservesStages: Options.Timer accumulates wall time
// for executed stages only.
func TestAssimilateTimerObservesStages(t *testing.T) {
	timer := nassim.NewStageTimer()
	cache := nassim.NewPipelineCache()
	if _, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"Cisco"}, Scale: 0.02, Cache: cache, Timer: timer}); err != nil {
		t.Fatal(err)
	}
	recs := timer.Records()
	if len(recs) == 0 {
		t.Fatal("timer observed nothing")
	}
	counts := make(map[string]int)
	for _, r := range recs {
		counts[r.Name] = r.Calls
	}
	// Warm re-run: no stage executes, so no new observations.
	if _, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"Cisco"}, Scale: 0.02, Cache: cache, Timer: timer}); err != nil {
		t.Fatal(err)
	}
	for _, r := range timer.Records() {
		if r.Calls != counts[r.Name] {
			t.Errorf("%s observed on a cache hit: %d -> %d", r.Name, counts[r.Name], r.Calls)
		}
	}
}
