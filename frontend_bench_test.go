package nassim_test

// Front-end benchmarks (make bench-frontend): manual parsing, template
// compilation, and empirical config matching — the §3/§4 half of the
// pipeline this PR parallelized and de-allocated. With
// NASSIM_FRONTEND_BENCH_OUT set, results are exported as
// BENCH_frontend.json (schema nassim-frontend-bench/v1) including derived
// seed-vs-new speedups, comparable across PRs like the other BENCH_*.json
// documents. The "seed" side pairs the 1-worker parse with the retained
// naive validator (the pre-optimization code path); on a single-core
// runner the speedup therefore measures the algorithmic wins (interning,
// memo tables, compiled-template cache, candidate pruning), and the worker
// pools add on top of it with the cores to use them.

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"nassim"
	"nassim/internal/cgm"
	"nassim/internal/empirical"
	"nassim/internal/pipeline"
	"nassim/internal/telemetry"
)

type frontendBenchEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	N       int     `json:"n"`
}

var (
	frontendBenchMu      sync.Mutex
	frontendBenchEntries = map[string]frontendBenchEntry{}
	frontendDerivedExtra = map[string]float64{}
)

// recordFrontendDerived adds a directly-measured derived figure (e.g. a
// worker pool's busy-time utilization) to the export document. benchdiff
// gates derived entries higher-better, except *_ns keys which are
// timings and gate lower-better.
func recordFrontendDerived(name string, v float64) {
	if os.Getenv("NASSIM_FRONTEND_BENCH_OUT") == "" {
		return
	}
	frontendBenchMu.Lock()
	defer frontendBenchMu.Unlock()
	frontendDerivedExtra[name] = v
}

// exportFrontendBench records one benchmark result and rewrites the export
// document, so partial runs (CI smoke: one iteration of one benchmark)
// still produce valid JSON.
func exportFrontendBench(b *testing.B, name string) {
	b.Helper()
	out := os.Getenv("NASSIM_FRONTEND_BENCH_OUT")
	if out == "" {
		return
	}
	frontendBenchMu.Lock()
	defer frontendBenchMu.Unlock()
	frontendBenchEntries[name] = frontendBenchEntry{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N), N: b.N}
	derived := map[string]float64{}
	get := func(name string) (float64, bool) {
		e, ok := frontendBenchEntries[name]
		return e.NsPerOp, ok
	}
	if w1, ok1 := get("ParseAll/workers1"); ok1 {
		if w8, ok8 := get("ParseAll/workers8"); ok8 && w8 > 0 {
			derived["parse_speedup_8v1"] = w1 / w8
		}
	}
	if naive, okN := get("ValidateConfigs/naive"); okN {
		if w8, ok8 := get("ValidateConfigs/workers8"); ok8 && w8 > 0 {
			derived["validate_speedup_seed_vs_8"] = naive / w8
		}
	}
	if p1, ok := get("ParseAll/workers1"); ok {
		if vn, okN := get("ValidateConfigs/naive"); okN {
			if p8, ok8 := get("ParseAll/workers8"); ok8 {
				if v8, okV := get("ValidateConfigs/workers8"); okV && p8+v8 > 0 {
					derived["parse_validate_seed_ns"] = p1 + vn
					derived["parse_validate_new8_ns"] = p8 + v8
					derived["parse_validate_speedup"] = (p1 + vn) / (p8 + v8)
				}
			}
		}
	}
	if cold, okC := get("CompileTemplates/cold"); okC {
		if warm, okW := get("CompileTemplates/warm"); okW && warm > 0 {
			derived["compile_speedup_warm_vs_cold"] = cold / warm
		}
	}
	for k, v := range frontendDerivedExtra {
		derived[k] = v
	}
	doc := struct {
		Schema     string                        `json:"schema"`
		Scale      float64                       `json:"scale"`
		Benchmarks map[string]frontendBenchEntry `json:"benchmarks"`
		Derived    map[string]float64            `json:"derived"`
	}{"nassim-frontend-bench/v1", benchScale, frontendBenchEntries, derived}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParseAll parses all four vendor manuals per op, sequentially
// and through the 8-worker page pool.
func BenchmarkParseAll(b *testing.B) {
	data := setup(b)
	for _, variant := range []struct {
		name    string
		workers int
	}{{"workers1", 1}, {"workers8", 8}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			pages := 0
			for _, vendor := range nassim.Vendors() {
				pages += len(data[vendor].pages)
			}
			b.ReportMetric(float64(pages), "pages/op")
			// Accumulate the page pool's busy time across iterations: low
			// utilization at workers=8 is the ROADMAP item 4 diagnosis (the
			// fan-out exists but the workers starve). The derivation and key
			// are telemetry's — the same code path the run manifest uses, so
			// -profile-stages runs and this export report one number.
			var acc telemetry.UtilizationAccum
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, vendor := range nassim.Vendors() {
					pr, err := nassim.ParseManualWorkers(context.Background(), vendor, data[vendor].pages, variant.workers)
					if err != nil {
						b.Fatal(err)
					}
					if len(pr.Corpora) == 0 {
						b.Fatal("no corpora")
					}
					acc.Add(pr.Pool)
				}
			}
			if util, ok := acc.Utilization(); ok {
				b.ReportMetric(util, "utilization")
				recordFrontendDerived(telemetry.UtilizationKey(telemetry.StageParse, variant.workers), util)
			}
			exportFrontendBench(b, "ParseAll/"+variant.name)
		})
	}
}

// BenchmarkDecodeArtifact measures the warm path's artifact decode in
// isolation: a cold pipeline run mirrors every vendor's parse and derive
// artifact to disk; the measured loop then decodes the stored blobs
// through the wired nassim-art binary codecs — no hashing, no disk I/O,
// no stage execution. decode_ns_per_artifact is the derived per-blob
// figure the benchdiff gate watches.
func BenchmarkDecodeArtifact(b *testing.B) {
	data := setup(b)
	eng, err := pipeline.New(pipeline.Config{CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	var jobs []pipeline.Job
	for _, vendor := range nassim.Vendors() {
		jobs = append(jobs, pipeline.Job{Vendor: vendor, Pages: data[vendor].pages})
	}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		b.Fatal(err)
	}
	var arts []pipeline.StoredArtifact
	var stored int64
	for _, job := range jobs {
		as, err := eng.StoredArtifacts(job)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range as {
			stored += int64(len(a.Data))
		}
		arts = append(arts, as...)
	}
	if want := 2 * len(jobs); len(arts) != want {
		b.Fatalf("disk mirror holds %d artifact(s), want %d", len(arts), want)
	}
	b.ReportMetric(float64(len(arts)), "artifacts/op")
	b.ReportMetric(float64(stored), "bytes/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range arts {
			if err := pipeline.DecodeStoredArtifact(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	perArtifact := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(arts))
	b.ReportMetric(perArtifact, "ns/artifact")
	recordFrontendDerived("decode_ns_per_artifact", perArtifact)
	exportFrontendBench(b, "DecodeArtifact")
}

// BenchmarkCompileTemplates builds the CGM index over every vendor's
// corpora per op. cold empties the compiled-template cache each iteration;
// warm reuses it — the cross-corpora/cross-vendor hit path.
func BenchmarkCompileTemplates(b *testing.B) {
	data := setup(b)
	var all []string
	for _, vendor := range nassim.Vendors() {
		for _, c := range data[vendor].asr.Parsed.Corpora {
			all = append(all, c.PrimaryCLI())
		}
	}
	compile := func() {
		ix := cgm.NewIndex()
		for j, tmpl := range all {
			_ = ix.Add(nassim.CorpusID(j), tmpl, nil)
		}
	}
	b.ReportMetric(float64(len(all)), "templates/op")
	for _, variant := range []string{"cold", "warm"} {
		variant := variant
		b.Run(variant, func(b *testing.B) {
			if variant == "warm" {
				compile() // prime the cache
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if variant == "cold" {
					b.StopTimer()
					cgm.ResetTemplateCache()
					b.StartTimer()
				}
				compile()
			}
			exportFrontendBench(b, "CompileTemplates/"+variant)
		})
	}
}

// BenchmarkValidateConfigs matches the paper-scale Huawei config corpus
// (§7.2 skew: many files, few distinct templates) against the VDM: the
// retained naive reference, the memoized path sequential, and the memoized
// path with the 8-file-worker pool.
func BenchmarkValidateConfigs(b *testing.B) {
	data := setup(b)
	d := data["Huawei"]
	files, ok := nassim.SyntheticConfigs(d.model, 1.0)
	if !ok {
		b.Fatal("no Huawei config corpus")
	}
	lines := 0
	for _, f := range files {
		lines += len(f.Lines)
	}
	run := func(b *testing.B, fn func() *nassim.EmpiricalReport) {
		b.ReportMetric(float64(lines), "lines/op")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep := fn(); rep.MatchingRatio() != 1.0 {
				b.Fatalf("ratio = %f", rep.MatchingRatio())
			}
		}
	}
	ctx := context.Background()
	b.Run("naive", func(b *testing.B) {
		run(b, func() *nassim.EmpiricalReport {
			return empirical.ValidateConfigsNaive(ctx, d.asr.VDM, files)
		})
		exportFrontendBench(b, "ValidateConfigs/naive")
	})
	b.Run("workers1", func(b *testing.B) {
		run(b, func() *nassim.EmpiricalReport {
			return nassim.ValidateConfigsWorkers(ctx, d.asr.VDM, files, 1)
		})
		exportFrontendBench(b, "ValidateConfigs/workers1")
	})
	b.Run("workers8", func(b *testing.B) {
		var acc telemetry.UtilizationAccum
		run(b, func() *nassim.EmpiricalReport {
			rep := nassim.ValidateConfigsWorkers(ctx, d.asr.VDM, files, 8)
			acc.Add(rep.Pool)
			return rep
		})
		if util, ok := acc.Utilization(); ok {
			b.ReportMetric(util, "utilization")
			recordFrontendDerived(telemetry.UtilizationKey("validate", 8), util)
		}
		exportFrontendBench(b, "ValidateConfigs/workers8")
	})
}
