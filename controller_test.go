package nassim_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"nassim"
	"nassim/internal/eval"
)

// TestControllerPublicAPI drives the root-level controller surface with an
// in-process device session.
func TestControllerPublicAPI(t *testing.T) {
	asr, err := nassim.AssimilateVendor(context.Background(), "H3C", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	binding := nassim.BindingFromAnnotations(
		nassim.GroundTruthAnnotations(asr.Model, 100, 3))
	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := nassim.NewController(3)
	if err := nassim.RegisterDevice(ctrl, "edge-1", "H3C", asr.VDM, binding,
		nassim.SessionExecutor(dev.NewSession()), dev.ShowConfigCommand()); err != nil {
		t.Fatal(err)
	}
	var attrID string
	for id := range binding {
		if strings.HasSuffix(id, "-time") {
			attrID = id
			break
		}
	}
	if attrID == "" {
		t.Skip("no time-typed bound attribute at this scale")
	}
	res, err := ctrl.Apply("edge-1", nassim.Intent{AttrID: attrID, Value: "30"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || !strings.Contains(res.CLI, "30") {
		t.Fatalf("push result: %+v", res)
	}
	if !dev.HasConfigLine(res.CLI) {
		t.Error("pushed CLI not in device config")
	}
}

// TestTable4PaperScale is the opt-in full-scale regression pin: set
// NASSIM_PAPER_SCALE=1 to run (~2 minutes). It asserts every discrete
// Table 4 count the paper reports.
func TestTable4PaperScale(t *testing.T) {
	if os.Getenv("NASSIM_PAPER_SCALE") == "" {
		t.Skip("set NASSIM_PAPER_SCALE=1 to run the ~2min full-scale regression")
	}
	rows, err := eval.Table4(1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][6]int{ // commands, views, pairs, invalid, examples, ambiguous
		"Huawei": {12874, 607, 36274, 13, 15466, 47},
		"Cisco":  {278, 27, 366, 19, 523, 8},
		"Nokia":  {14046, 3832, 22734, 139, 0, 0},
		"H3C":    {759, 28, 851, 13, 1147, 4},
	}
	for _, r := range rows {
		w := want[r.Vendor]
		got := [6]int{r.Commands, r.Views, r.CLIViewPairs, r.InvalidCLIs, r.ExampleSnippets, r.AmbiguousViews}
		if got != w {
			t.Errorf("%s: %v, want %v", r.Vendor, got, w)
		}
		if r.Vendor == "Huawei" || r.Vendor == "Nokia" {
			if r.MatchingRatio != 1.0 {
				t.Errorf("%s matching ratio = %f", r.Vendor, r.MatchingRatio)
			}
		}
	}
}

// TestMapperPaperScale is the opt-in full-scale mapper regression: the
// Table 5 result shape must hold at paper scale. Set NASSIM_PAPER_SCALE=1.
func TestMapperPaperScale(t *testing.T) {
	if os.Getenv("NASSIM_PAPER_SCALE") == "" {
		t.Skip("set NASSIM_PAPER_SCALE=1 to run the full-scale mapper regression")
	}
	tasks, err := eval.MapperEval(eval.MapperOptions{Scale: 1.0, Ks: eval.Table5Ks, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.SanityChecks(tasks); len(v) != 0 {
		t.Errorf("shape violations at paper scale:\n%s\n%s",
			strings.Join(v, "\n"), eval.FormatMapper(tasks, true))
	}
}
