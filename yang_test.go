package nassim_test

import (
	"context"
	"testing"

	"nassim"
)

func TestYANGPublicAPI(t *testing.T) {
	m, err := nassim.SyntheticModel("Huawei", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sources := nassim.SyntheticYANG(m)
	if len(sources) == 0 {
		t.Fatal("no YANG modules generated")
	}
	var modules []*nassim.YANGModule
	for _, src := range sources {
		mod, err := nassim.ParseYANG(src.Text)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		modules = append(modules, mod)
	}
	bridge := nassim.BridgeYANG("Huawei", modules)
	if len(bridge.Corpora) == 0 || len(bridge.Edges) == 0 {
		t.Fatalf("bridge: %d corpora, %d edges", len(bridge.Corpora), len(bridge.Edges))
	}
	v, rep := nassim.BuildVDM(context.Background(), "Huawei", bridge.Corpora, bridge.Edges)
	if rep.RootView != "yang data tree" {
		t.Errorf("root = %q", rep.RootView)
	}
	if len(v.InvalidCLIs) != 0 {
		t.Errorf("invalid pseudo-templates: %v", v.InvalidCLIs)
	}

	anns := nassim.YANGAnnotations(m, bridge, nassim.GroundTruthAnnotations(m, 30, 1))
	if len(anns) == 0 {
		t.Fatal("no annotations translated onto the YANG corpora")
	}
	for _, ann := range anns {
		if ann.Param.Corpus < 0 || ann.Param.Corpus >= len(bridge.Corpora) {
			t.Fatalf("annotation points outside the bridged corpora: %+v", ann)
		}
		// The leaf parameter must actually exist in the bridged corpus.
		found := false
		for _, p := range bridge.Corpora[ann.Param.Corpus].ParamTokens() {
			if p == ann.Param.Name {
				found = true
			}
		}
		if !found {
			t.Fatalf("annotation %v: parameter not in corpus %d", ann, ann.Param.Corpus)
		}
	}

	if _, err := nassim.ParseYANG("not yang"); err == nil {
		t.Error("garbage YANG accepted")
	}
}

func TestCorpusIDExport(t *testing.T) {
	if got := nassim.CorpusID(7); got != "7" {
		t.Errorf("CorpusID(7) = %q", got)
	}
}

func TestSessionExecutorExport(t *testing.T) {
	m, err := nassim.SyntheticModel("Cisco", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := nassim.NewDevice(m)
	if err != nil {
		t.Fatal(err)
	}
	exec := nassim.SessionExecutor(dev.NewSession())
	resp, err := exec.Exec("return")
	if err != nil || !resp.OK {
		t.Fatalf("exec: %+v %v", resp, err)
	}
}
