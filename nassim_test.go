package nassim_test

import (
	"context"
	"strings"
	"testing"

	"nassim"
)

// TestAssimilatePipeline drives the whole VDM construction phase through
// the public API for every vendor at test scale.
func TestAssimilatePipeline(t *testing.T) {
	for _, vendor := range nassim.Vendors() {
		vendor := vendor
		t.Run(vendor, func(t *testing.T) {
			asr, err := nassim.AssimilateVendor(context.Background(), vendor, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			if !asr.Parsed.Completeness.Passed() {
				t.Fatalf("completeness report failed:\n%s", asr.Parsed.Completeness.Summary())
			}
			if asr.PreCorrectionInvalid == 0 {
				t.Error("no invalid CLIs found before correction (errors were injected)")
			}
			if len(asr.VDM.InvalidCLIs) != 0 {
				t.Errorf("invalid CLIs remain after expert correction: %v", asr.VDM.InvalidCLIs)
			}
			if issues := nassim.ValidateHierarchy(asr.VDM); len(issues) != 0 {
				t.Errorf("hierarchy issues: %v", issues)
			}
			if asr.DeriveReport.RootView == "" {
				t.Error("no root view derived")
			}
		})
	}
}

func TestUnknownVendorErrors(t *testing.T) {
	if _, err := nassim.AssimilateVendor(context.Background(), "Arista", 0.02); err == nil {
		t.Error("Arista has no manual parser; Assimilate should fail")
	}
	if _, err := nassim.SyntheticModel("nope", 1); err == nil {
		t.Error("unknown vendor accepted")
	}
	if _, err := nassim.ParseManual(context.Background(), "nope", nil); err == nil {
		t.Error("unknown vendor accepted by ParseManual")
	}
}

func TestEmpiricalValidationViaPublicAPI(t *testing.T) {
	asr, err := nassim.AssimilateVendor(context.Background(), "Huawei", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	files, ok := nassim.SyntheticConfigs(asr.Model, 0.05)
	if !ok {
		t.Fatal("no config corpus for Huawei")
	}
	rep := nassim.ValidateConfigs(context.Background(), asr.VDM, files)
	if rep.MatchingRatio() != 1.0 {
		t.Fatalf("matching ratio = %f\n%v", rep.MatchingRatio(), rep.Failures)
	}

	// Exercise unused commands against a live device over TCP.
	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := nassim.ServeDevice(dev, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := nassim.DialDevice(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	live, err := nassim.TestUnusedCommands(context.Background(), asr.VDM, rep.UsedCorpora, cl, dev.ShowConfigCommand(), 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if live.Tested == 0 || live.Verified != live.Accepted || live.Accepted != live.Tested {
		t.Fatalf("live report: %+v", live)
	}
}

func TestMapperKindsViaPublicAPI(t *testing.T) {
	u := nassim.BuildUDM()
	asr, err := nassim.AssimilateVendor(context.Background(), "Huawei", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 40, 3)
	if len(anns) != 40 {
		t.Fatalf("annotations = %d", len(anns))
	}
	for _, kind := range nassim.AllModelKinds() {
		m, err := nassim.NewMapper(u, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Name() != string(kind) {
			t.Errorf("Name = %q, want %q", m.Name(), kind)
		}
		ctx := nassim.ExtractContext(asr.VDM, anns[0].Param)
		recs := m.Recommend(ctx, 5)
		if len(recs) != 5 {
			t.Fatalf("%s: recs = %d", kind, len(recs))
		}
		if out := nassim.Explain(ctx, recs); !strings.Contains(out, "1.") {
			t.Errorf("%s: Explain output %q", kind, out)
		}
	}
	if _, err := nassim.NewMapper(u, nassim.ModelKind("bogus")); err == nil {
		t.Error("bogus model kind accepted")
	}
}

func TestFineTuneOnlyNetBERT(t *testing.T) {
	u := nassim.BuildUDM()
	asr, err := nassim.AssimilateVendor(context.Background(), "H3C", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 60, 5)

	nb, err := nassim.NewMapper(u, nassim.ModelNetBERT)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nb.FineTune(asr.VDM, u, anns, 10, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Positives != 60 || stats.Alignments == 0 {
		t.Errorf("fine-tune stats: %+v", stats)
	}

	ir, err := nassim.NewMapper(u, nassim.ModelIR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.FineTune(asr.VDM, u, anns, 10, 1, 5); err == nil {
		t.Error("IR mapper accepted fine-tuning")
	}
}

// Fine-tuning must improve the same vendor's mapping (the in-domain
// sanity case; the paper's cross-vendor protocol lives in internal/eval).
func TestFineTuningImprovesRecall(t *testing.T) {
	u := nassim.BuildUDM()
	asr, err := nassim.AssimilateVendor(context.Background(), "Nokia", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 110, 7)
	train, test := anns[:70], anns[70:]

	base, _ := nassim.NewMapper(u, nassim.ModelSBERT)
	tuned, _ := nassim.NewMapper(u, nassim.ModelNetBERT)
	if _, err := tuned.FineTune(asr.VDM, u, train, 10, 1, 7); err != nil {
		t.Fatal(err)
	}
	ks := []int{1, 5, 10}
	rb := nassim.Evaluate(base, asr.VDM, u, test, ks)
	rt := nassim.Evaluate(tuned, asr.VDM, u, test, ks)
	if rt.Recall[10] < rb.Recall[10] {
		t.Errorf("fine-tuning hurt recall@10: %f -> %f", rb.Recall[10], rt.Recall[10])
	}
	if rt.MRR <= rb.MRR {
		t.Errorf("fine-tuning did not improve MRR: %f -> %f", rb.MRR, rt.MRR)
	}
}

func TestApplyCorrections(t *testing.T) {
	corpora := []nassim.Corpus{{CLIs: []string{"broken {", "sibling <y>"}}}
	applied, err := nassim.ApplyCorrections(corpora, []nassim.Correction{
		{Corpus: 0, CLI: "fixed <x>"},
		{Corpus: 99, CLI: "ignored"}, // out of range: rejected and reported
		{Corpus: -1, CLI: "ignored"},
	})
	if applied != 1 {
		t.Errorf("applied = %d, want 1", applied)
	}
	if err == nil || !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "-1") {
		t.Errorf("rejected indices not reported: %v", err)
	}
	if corpora[0].CLIs[0] != "fixed <x>" {
		t.Errorf("correction not applied: %v", corpora[0].CLIs)
	}
	if corpora[0].CLIs[1] != "sibling <y>" {
		t.Errorf("sibling CLI clobbered: %v", corpora[0].CLIs)
	}
	if applied, err = nassim.ApplyCorrections(corpora, nil); applied != 0 || err != nil {
		t.Errorf("empty fixes: applied=%d err=%v", applied, err)
	}
}

func TestAccelerationHeadlineFormula(t *testing.T) {
	// The paper: 89% top-10 recall => manual consulted 11% of the time =>
	// 9.1x acceleration.
	got := nassim.AccelerationFactor(89)
	if got < 9.0 || got > 9.2 {
		t.Errorf("AccelerationFactor(89) = %f, want ~9.1", got)
	}
}

func TestAnnotationCounts(t *testing.T) {
	if n := nassim.AnnotationCount("Huawei"); n != 381 {
		t.Errorf("Huawei annotations = %d, want 381", n)
	}
	if n := nassim.AnnotationCount("Nokia"); n != 110 {
		t.Errorf("Nokia annotations = %d, want 110", n)
	}
}

func TestBuildUDMStable(t *testing.T) {
	a, b := nassim.BuildUDM(), nassim.BuildUDM()
	if a.Len() != b.Len() || a.Len() < 381 {
		t.Fatalf("UDM sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Attrs {
		if a.Attrs[i].ID != b.Attrs[i].ID {
			t.Fatal("UDM not deterministic")
		}
	}
}

// TestJuniperFullPipeline exercises the E13 fifth vendor through the
// public API: assimilation, hierarchy, empirical-style intent push.
func TestJuniperFullPipeline(t *testing.T) {
	asr, err := nassim.AssimilateVendor(context.Background(), "Juniper", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !asr.Parsed.Completeness.Passed() {
		t.Fatalf("completeness failed:\n%s", asr.Parsed.Completeness.Summary())
	}
	if asr.PreCorrectionInvalid == 0 || len(asr.VDM.InvalidCLIs) != 0 {
		t.Errorf("error handling: pre=%d post=%d", asr.PreCorrectionInvalid, len(asr.VDM.InvalidCLIs))
	}
	if issues := nassim.ValidateHierarchy(asr.VDM); len(issues) != 0 {
		t.Errorf("hierarchy issues: %v", issues)
	}
	// Configure the new vendor through the controller like any other.
	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		t.Fatal(err)
	}
	binding := nassim.BindingFromAnnotations(nassim.GroundTruthAnnotations(asr.Model, 100, 9))
	ctrl := nassim.NewController(9)
	if err := nassim.RegisterDevice(ctrl, "jnpr-1", "Juniper", asr.VDM, binding,
		nassim.SessionExecutor(dev.NewSession()), dev.ShowConfigCommand()); err != nil {
		t.Fatal(err)
	}
	for id := range binding {
		if strings.HasSuffix(id, "-time") {
			res, err := ctrl.Apply("jnpr-1", nassim.Intent{AttrID: id, Value: "44"})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("intent not verified: %+v", res)
			}
			return
		}
	}
	t.Skip("no time-typed binding at this scale")
}
