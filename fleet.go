package nassim

import (
	"context"

	"nassim/internal/obsreport"
	"nassim/internal/reconciler"
)

// This file is the public fleet-reconciliation surface: the continuous
// control loop (internal/reconciler) that holds a simulated fleet to the
// desired state an assimilation run derived, detects drift, re-validates
// only the invalidated pipeline stages, and emits deterministic
// remediation plans. It is read-only by construction — the reconciler
// proposes, it never pushes.

// Fleet-reconciliation types re-exported from internal/reconciler.
type (
	// FleetSpec declares a simulated fleet: size, vendors, seed, and the
	// chaos scenario it runs under.
	FleetSpec = reconciler.FleetSpec
	// FleetScenario is a named, seeded chaos profile for a whole fleet:
	// pure functions from (seed, device, fleet size) to per-device
	// transport faults and planted drift.
	FleetScenario = reconciler.Scenario
	// FleetDriftSpec is the drift a scenario plants on one device.
	FleetDriftSpec = reconciler.DriftSpec
	// FleetReconciler is the continuous desired-vs-observed control loop.
	FleetReconciler = reconciler.Reconciler
	// ReconcilerConfig tunes a FleetReconciler.
	ReconcilerConfig = reconciler.Config
	// ReconcileCycle is everything one reconcile cycle learned.
	ReconcileCycle = reconciler.CycleResult
	// ReconcileReport is one device's outcome in one cycle.
	ReconcileReport = reconciler.DeviceReport
	// ReconcilePlan is the cycle's deterministic remediation proposal.
	ReconcilePlan = reconciler.Plan
	// ReconcilePlanAction is one proposed remediation step.
	ReconcilePlanAction = reconciler.PlanAction
	// FleetHealth classifies one device's state after a probe.
	FleetHealth = reconciler.Health
	// DriftClass labels one kind of desired-vs-observed divergence.
	DriftClass = reconciler.DriftClass
	// FleetTransport selects how a simulated fleet is served (TCP
	// listeners or in-process pipes).
	FleetTransport = reconciler.Transport
)

// The fleet transports. TCP (the default) serves each device on its own
// loopback listener; Pipe serves devices over in-process net.Pipe
// connections, costing no file descriptors, so fleets scale past the
// per-process FD limit. Probes and plans are byte-identical across both.
const (
	FleetTransportTCP  = reconciler.TransportTCP
	FleetTransportPipe = reconciler.TransportPipe
)

// The fleet health states, in per-device precedence order.
const (
	FleetConverged   = reconciler.HealthConverged
	FleetDrifted     = reconciler.HealthDrifted
	FleetDegraded    = reconciler.HealthDegraded
	FleetUnreachable = reconciler.HealthUnreachable
)

// The drift classes a reconcile cycle distinguishes.
const (
	DriftMissingCLI   = reconciler.DriftMissingCLI
	DriftExtraCLI     = reconciler.DriftExtraCLI
	DriftParamSkew    = reconciler.DriftParamSkew
	DriftFirmwareSkew = reconciler.DriftFirmwareSkew
)

// ReconcilePlanSchema identifies the remediation plan's JSON layout.
const ReconcilePlanSchema = reconciler.PlanSchema

// NewFleetReconciler derives the fleet's desired state through the
// assimilation pipeline (cache-keyed, so later cycles re-run only what
// drift invalidates), then builds and serves the simulated fleet. Close
// the reconciler to tear the fleet down.
func NewFleetReconciler(ctx context.Context, cfg ReconcilerConfig) (*FleetReconciler, error) {
	return reconciler.New(ctx, cfg)
}

// FleetScenarios lists the chaos scenario library in presentation order.
func FleetScenarios() []FleetScenario { return reconciler.Scenarios() }

// FleetScenarioNames lists the library's names, sorted.
func FleetScenarioNames() []string { return reconciler.ScenarioNames() }

// FleetScenarioByName resolves a named scenario; unknown names return an
// error listing the valid set.
func FleetScenarioByName(name string) (FleetScenario, error) {
	return reconciler.ScenarioByName(name)
}

// ChaosProfileNames lists the names accepted by ChaosProfileByName — the
// scenario library's names, shared by `nassim run -chaos-profile` and
// `nassim reconcile -chaos-profile`.
func ChaosProfileNames() []string { return reconciler.ScenarioNames() }

// ReconcileRecorder snapshots process state so a reconcile run can emit a
// run manifest (schema RunReportSchema) with a Reconcile block. Create it
// before the first cycle, Build after the last.
type ReconcileRecorder struct{ c *obsreport.Collector }

// NewReconcileRecorder starts recording.
func NewReconcileRecorder() *ReconcileRecorder {
	return &ReconcileRecorder{c: obsreport.NewCollector()}
}

// Build assembles the reconcile run's manifest from its final cycle. The
// job records are the revalidation pipeline's per-vendor results; the
// Reconcile block summarizes fleet health, drift, and cache economy.
// invalidated totals the artifacts evicted across all cycles.
func (rr *ReconcileRecorder) Build(cfg ReconcilerConfig, last *ReconcileCycle, cycles, invalidated int) *RunReport {
	info := obsreport.RunInfo{
		Vendors: last.Plan.Vendors, Workers: cfg.Workers,
		Scale: cfg.Spec.Scale, Seed: cfg.Spec.Seed,
		Validate: true, Chaos: cfg.Spec.Scenario.Name != "",
	}
	m := rr.c.Build(info, last.JobResults)
	health := map[string]int{}
	for h, n := range last.Health {
		health[string(h)] = n
	}
	drift := map[string]int{}
	for i := range last.Reports {
		for _, it := range last.Reports[i].Drift {
			drift[string(it.Class)]++
		}
	}
	m.Reconcile = &obsreport.ReconcileSummary{
		Scenario: last.Plan.Scenario, Devices: last.Plan.Devices,
		Cycles: cycles, Health: health, Drift: drift,
		Invalidated: invalidated, CacheHitRatio: last.CacheHitRatio(),
		PlanActions: len(last.Plan.Actions), PlanDeferred: last.Plan.Deferred,
	}
	return m
}

// ChaosProfileByName resolves a named chaos profile to a single-transport
// profile seeded with seed. "standard" and "dead" keep their historical
// single-device shapes; every other scenario contributes its device-0
// transport. Unknown names return the scenario library's error, which
// lists the valid set.
func ChaosProfileByName(name string, seed uint64) (ChaosProfile, error) {
	switch name {
	case "standard":
		return StandardChaosProfile(seed), nil
	case "dead":
		return DeadDeviceProfile(), nil
	}
	sc, err := reconciler.ScenarioByName(name)
	if err != nil {
		return ChaosProfile{}, err
	}
	return sc.Transport(seed, 0, 1), nil
}
