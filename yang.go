package nassim

import (
	"nassim/internal/hierarchy"
	"nassim/internal/netconf"
	"nassim/internal/yang"
)

// This file exposes the §8.1/§8.2 extension: applying the
// Parsing-Validating-Mapping philosophy to YANG/NETCONF device models. The
// paper leaves vendor-YANG assimilation as future work and predicts the
// core philosophy carries over; these APIs implement it — generate (or
// obtain) vendor YANG modules, parse them, bridge them into the
// vendor-independent corpus format, and run the unchanged Validator and
// Mapper.

type (
	// YANGModule is a parsed vendor YANG module.
	YANGModule = yang.Module
	// YANGModuleSource is one generated vendor YANG module document.
	YANGModuleSource = yang.ModuleSource
	// YANGLeaf is one data leaf with its container path.
	YANGLeaf = yang.LeafPath
	// YANGOrigin locates a bridged corpus in its source module.
	YANGOrigin = yang.LeafOrigin
)

// SyntheticYANG renders the ground-truth model as the vendor's native YANG
// module set (the synthetic substitute for the vendors' YANG repositories
// the paper cites).
func SyntheticYANG(m *DeviceModel) []YANGModuleSource {
	return yang.Generate(m)
}

// ParseYANG parses one YANG module document.
func ParseYANG(src string) (*YANGModule, error) {
	return yang.Parse(src)
}

// YANGBridgeResult is the outcome of bridging YANG modules into the corpus
// format: corpora (one per leaf), the explicit hierarchy YANG's tree
// provides, and per-corpus origins.
type YANGBridgeResult struct {
	Corpora []Corpus
	Edges   []Edge
	Origin  []YANGOrigin
}

// BridgeYANG converts parsed vendor YANG modules into the corpus format so
// BuildVDM and the Mapper consume them unchanged.
func BridgeYANG(vendor string, modules []*YANGModule) *YANGBridgeResult {
	res := yang.Bridge(vendor, modules)
	edges := make([]Edge, len(res.Edges))
	for i, e := range res.Edges {
		edges[i] = hierarchy.Edge{Parent: e.Parent, Child: e.Child}
	}
	return &YANGBridgeResult{Corpora: res.Corpora, Edges: edges, Origin: res.Origin}
}

// YANGAnnotations translates CLI-side ground-truth annotations onto the
// bridged YANG corpora: each annotated command parameter is located as the
// leaf with the same name inside the module of the command's feature
// (preferring the container of the command's primary view). Annotations
// without a corresponding leaf are dropped.
func YANGAnnotations(m *DeviceModel, bridge *YANGBridgeResult, anns []Annotation) []Annotation {
	vendorLower := ""
	for _, r := range string(m.Vendor) {
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		vendorLower += string(r)
	}
	type key struct{ module, leaf, last string }
	exact := map[key]int{}
	loose := map[[2]string]int{}
	for i, o := range bridge.Origin {
		last := ""
		if len(o.Path) > 0 {
			last = o.Path[len(o.Path)-1]
		}
		k := key{o.Module, o.Leaf, last}
		if _, ok := exact[k]; !ok {
			exact[k] = i
		}
		lk := [2]string{o.Module, o.Leaf}
		if _, ok := loose[lk]; !ok {
			loose[lk] = i
		}
	}
	var out []Annotation
	for _, ann := range anns {
		if ann.Param.Corpus < 0 || ann.Param.Corpus >= len(m.Commands) {
			continue
		}
		cmd := m.Commands[ann.Param.Corpus]
		module := vendorLower + "-" + cmd.Feature
		idx, ok := exact[key{module, ann.Param.Name, yang.ContainerName(cmd.Views[0])}]
		if !ok {
			idx, ok = loose[[2]string{module, ann.Param.Name}]
		}
		if !ok {
			continue
		}
		out = append(out, Annotation{
			Param:  Parameter{Corpus: idx, Name: ann.Param.Name},
			AttrID: ann.AttrID,
		})
	}
	return out
}

// NETCONF exposure: the configuration protocol YANG models (§8.1). A
// YANG-assimilated device is served as a schema-validated datastore over a
// NETCONF-style TCP transport (hello exchange, edit-config / get-config,
// ]]>]]> framing) instead of the CLI transport.

type (
	// NetconfStore is a YANG-schema-validated configuration datastore.
	NetconfStore = netconf.Store
	// NetconfServer serves a datastore over the NETCONF-style protocol.
	NetconfServer = netconf.Server
	// NetconfClient is a NETCONF session.
	NetconfClient = netconf.Client
	// NetconfEntry is one datastore leaf value.
	NetconfEntry = netconf.Entry
)

// NewNetconfStore builds a datastore over the device's YANG modules.
func NewNetconfStore(modules []*YANGModule) *NetconfStore {
	return netconf.NewStore(modules)
}

// ServeNetconf serves a datastore over TCP ("127.0.0.1:0" picks a port).
func ServeNetconf(store *NetconfStore, addr string) (*NetconfServer, error) {
	return netconf.Serve(store, addr)
}

// DialNetconf opens a NETCONF session.
func DialNetconf(addr string) (*NetconfClient, error) {
	return netconf.Dial(addr)
}
