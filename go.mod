module nassim

go 1.22
