package nassim_test

import (
	"context"
	"fmt"

	"nassim"
)

// The §7.3 headline: 89% top-10 recall means engineers consult the manual
// 11% of the time — a 9.1x acceleration of the mapping phase.
func ExampleAccelerationFactor() {
	fmt.Printf("%.1fx\n", nassim.AccelerationFactor(89))
	// Output: 9.1x
}

// Assimilate runs the whole VDM-construction phase — render (or scrape)
// the manual, parse, expert-correct the flagged templates, derive the
// hierarchy — through the staged engine. A shared cache makes the warm
// re-run skip every stage.
func ExampleAssimilate() {
	opts := nassim.Options{
		Vendors: []string{"H3C"}, Scale: 0.02,
		Cache: nassim.NewPipelineCache(),
	}
	res, err := nassim.Assimilate(context.Background(), opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	asr := res.Results[0]
	fmt.Println("completeness passed:", asr.Parsed.Completeness.Passed())
	fmt.Println("invalid templates caught:", asr.PreCorrectionInvalid)
	fmt.Println("remaining after correction:", len(asr.VDM.InvalidCLIs))

	warm, err := nassim.Assimilate(context.Background(), opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("warm re-run stages executed:", warm.Stats.Runs())
	// Output:
	// completeness passed: true
	// invalid templates caught: 2
	// remaining after correction: 0
	// warm re-run stages executed: 0
}

// The Mapper's recommendations carry the semantic context parsed from the
// manual, so an engineer reviews them without opening the manual again.
func ExampleMapper_Recommend() {
	asr, err := nassim.AssimilateVendor(context.Background(), "Huawei", 0.02)
	if err != nil {
		fmt.Println(err)
		return
	}
	u := nassim.BuildUDM()
	m, err := nassim.NewMapper(u, nassim.ModelIR)
	if err != nil {
		fmt.Println(err)
		return
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 1, 42)
	ctx := nassim.ExtractContext(asr.VDM, anns[0].Param)
	recs := m.Recommend(ctx, 3)
	fmt.Println("recommendations:", len(recs))
	// Output: recommendations: 3
}
