package nassim_test

import (
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"nassim"
	"nassim/internal/telemetry"
)

// BenchmarkChaosExec measures the resilient exec path under the standard
// chaos profile (5% resets, 10% 200ms latency spikes, one flap window):
// each iteration is one show-command exchange through retry, breaker, and
// replay. The interesting outputs are the latency tail the injected
// faults produce and how many retries absorbed them; with
// NASSIM_CHAOS_BENCH_OUT set (make chaos) they are exported as
// BENCH_chaos.json (schema nassim-chaos-bench/v1).
func BenchmarkChaosExec(b *testing.B) {
	m, err := nassim.SyntheticModel("Cisco", 0.02)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := nassim.NewDevice(m)
	if err != nil {
		b.Fatal(err)
	}
	srv, fl, err := nassim.ServeDeviceChaos(dev, "127.0.0.1:0", nassim.StandardChaosProfile(17))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	rc := nassim.DialDeviceResilient(srv.Addr(), nassim.ResilientOptions{
		Seed: 17, Retry: nassim.RetryPolicy{Budget: -1}})
	defer rc.Close()

	show := dev.ShowConfigCommand()
	retryCounter := telemetry.GetCounter("nassim_device_retries_total")
	retriesBefore := retryCounter.Value()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := rc.Exec(show); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()

	retries := retryCounter.Value() - retriesBefore
	p50, p99 := latencyQuantiles(lat)
	b.ReportMetric(float64(p50.Microseconds())/1e3, "p50_ms")
	b.ReportMetric(float64(p99.Microseconds())/1e3, "p99_ms")
	b.ReportMetric(float64(retries)/float64(b.N), "retries/op")
	exportChaosBench(b, lat, p50, p99, retries, fl.Stats())
}

// latencyQuantiles returns the p50 and p99 of the sample (nearest-rank).
func latencyQuantiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return rank(0.50), rank(0.99)
}

func exportChaosBench(b *testing.B, lat []time.Duration, p50, p99 time.Duration,
	retries int64, stats nassim.ChaosStats) {
	b.Helper()
	out := os.Getenv("NASSIM_CHAOS_BENCH_OUT")
	if out == "" {
		return
	}
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	doc := struct {
		Schema  string  `json:"schema"`
		N       int     `json:"n"`
		P50Ms   float64 `json:"exec_p50_ms"`
		P99Ms   float64 `json:"exec_p99_ms"`
		MeanMs  float64 `json:"exec_mean_ms"`
		Retries int64   `json:"retries"`
		Faults  struct {
			Conns   int64 `json:"connections"`
			Dropped int64 `json:"dropped"`
			Resets  int64 `json:"resets"`
			Spikes  int64 `json:"latency_spikes"`
		} `json:"faults_delivered"`
	}{
		Schema: "nassim-chaos-bench/v1", N: len(lat),
		P50Ms:   float64(p50.Microseconds()) / 1e3,
		P99Ms:   float64(p99.Microseconds()) / 1e3,
		MeanMs:  float64(total.Microseconds()) / 1e3 / float64(len(lat)),
		Retries: retries,
	}
	doc.Faults.Conns = stats.Conns
	doc.Faults.Dropped = stats.Dropped
	doc.Faults.Resets = stats.Resets
	doc.Faults.Spikes = stats.Spikes
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
