package nassim_test

// Golden test for the vectorized mapper hot path: on every built-in
// vendor's assimilated corpus, the precombined-matrix scorer must produce
// exactly the same top-k recommendation lists as the scalar Equation 2
// reference (per-pair cosines, full stable sort). Identical lists imply
// identical recall@top-k and MRR, so the §7.3 evaluation is unchanged by
// the optimization.

import (
	"context"
	"testing"

	"nassim"
)

func TestVectorizedRecommendMatchesNaiveFourVendors(t *testing.T) {
	if testing.Short() {
		t.Skip("four-vendor corpus in -short mode")
	}
	u := nassim.BuildUDM()
	for _, vendor := range nassim.Vendors() {
		model, err := nassim.SyntheticModel(vendor, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		asr, err := nassim.AssimilateModel(context.Background(), model)
		if err != nil {
			t.Fatal(err)
		}
		anns := nassim.GroundTruthAnnotations(model, 40, 9)
		for _, kind := range []nassim.ModelKind{nassim.ModelSBERT, nassim.ModelIRSBERT} {
			m, err := nassim.NewMapper(u, kind)
			if err != nil {
				t.Fatal(err)
			}
			for _, ann := range anns {
				pc := nassim.ExtractContext(asr.VDM, ann.Param)
				fast := m.Recommend(pc, 10)
				naive := m.RecommendNaive(pc, 10)
				if len(fast) != len(naive) {
					t.Fatalf("%s/%s %s: %d recs vs %d", vendor, kind, ann.Param,
						len(fast), len(naive))
				}
				for i := range naive {
					if fast[i].AttrIndex != naive[i].AttrIndex {
						t.Fatalf("%s/%s %s pos %d: fast=%s(%.12f) naive=%s(%.12f)",
							vendor, kind, ann.Param, i,
							fast[i].Attr.ID, fast[i].Score,
							naive[i].Attr.ID, naive[i].Score)
					}
					if d := fast[i].Score - naive[i].Score; d > 1e-9 || d < -1e-9 {
						t.Fatalf("%s/%s %s pos %d: score drift %v", vendor, kind, ann.Param, i, d)
					}
				}
			}
		}
	}
}
