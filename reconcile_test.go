package nassim_test

import (
	"bytes"
	"context"
	"testing"

	"nassim"
)

// TestReconcileFleetAcceptance is the issue's headline criterion: a seeded
// 500-device mixed-vendor fleet under combined churn, firmware skew, and
// link flapping converges with zero hard failures, emits byte-identical
// reconcile-plan/v1 documents across two runs with the same seed and
// across probe-worker counts, and re-runs only the pipeline stages drift
// invalidated (the front end stays cached).
func TestReconcileFleetAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("500-device fleet in -short mode")
	}
	sc, err := nassim.FleetScenarioByName("churn+skew+flap")
	if err != nil {
		t.Fatal(err)
	}
	const devices = 500
	// One shared artifact store: the desired-state derivation runs once and
	// every later engine warm-starts from it, like processes sharing a
	// cache directory.
	store := nassim.NewPipelineCache()

	run := func(maxParallel int, transport nassim.FleetTransport) (plans [][]byte) {
		r, err := nassim.NewFleetReconciler(context.Background(), nassim.ReconcilerConfig{
			Spec: nassim.FleetSpec{
				Devices: devices, Scale: 0.02, Seed: 1177, Scenario: sc,
				Transport: transport,
			},
			MaxParallel: maxParallel,
			Store:       store,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for c := 0; c < 2; c++ {
			cr, err := r.RunCycle(context.Background())
			if err != nil {
				t.Fatalf("cycle %d: %v", c+1, err)
			}
			// Zero hard failures: every device answers its probe — the
			// resilient clients absorb the churn and flap windows.
			if got := cr.Health[nassim.FleetUnreachable]; got != 0 {
				t.Fatalf("cycle %d: %d unreachable devices, want 0 (health %v)",
					c+1, got, cr.Health)
			}
			if cr.Plan.Deferred {
				t.Fatalf("cycle %d: plan deferred with zero unreachable", c+1)
			}
			// Incremental revalidation: at most one stage (empirical) per
			// vendor re-runs; parse, syntax, and hierarchy stay cached.
			if runs, vendors := cr.Stats.Runs(), 4; runs > vendors {
				t.Fatalf("cycle %d re-ran %d stages (%v), want <= %d (empirical only)",
					c+1, runs, cr.Stats.StageRuns, vendors)
			}
			if ratio := cr.CacheHitRatio(); ratio < 0.75 {
				t.Fatalf("cycle %d cache-hit ratio %.2f, want >= 0.75", c+1, ratio)
			}
			b, err := cr.Plan.Encode()
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, b)
		}
		return plans
	}

	first := run(32, nassim.FleetTransportTCP)
	again := run(32, nassim.FleetTransportTCP)
	narrow := run(4, nassim.FleetTransportTCP)
	// The in-process pipe transport (zero file descriptors per device)
	// must be a pure transport swap: same probes, same health, same plan
	// bytes.
	piped := run(32, nassim.FleetTransportPipe)
	for c := range first {
		if !bytes.Equal(first[c], again[c]) {
			t.Errorf("cycle %d: plan differs between two runs with the same seed", c+1)
		}
		if !bytes.Equal(first[c], narrow[c]) {
			t.Errorf("cycle %d: plan differs between MaxParallel 32 and 4", c+1)
		}
		if !bytes.Equal(first[c], piped[c]) {
			t.Errorf("cycle %d: plan differs between TCP and pipe transports", c+1)
		}
	}
	// The scenario must produce real drift at this scale or the byte
	// comparison proves nothing.
	if !bytes.Contains(first[0], []byte(`"class"`)) {
		t.Error("500-device mixed scenario produced no drift actions")
	}
}
