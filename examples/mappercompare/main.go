// Mappercompare: the §7.3 model comparison in miniature — run all seven
// model combinations (IR, SimCSE, SBERT, their IR+ composites, NetBERT) on
// one mapping task and print a Table 5-style grid, including the
// cross-vendor fine-tuning of NetBERT.
//
//	go run ./examples/mappercompare
package main

import (
	"context"
	"fmt"

	"nassim"
)

// errlog is the structured logger errors are reported through; nassim.Fatal
// initializes stderr logging on first use so failures are never silent.
var errlog = nassim.Logger("examples/mappercompare")

func main() {
	const scale = 0.1
	u := nassim.BuildUDM()

	// The mapping task: Nokia VDM -> UDM (the paper's harder setting);
	// NetBERT's training data comes from the other vendor (cross-vendor
	// tuning and validation, §7.3). The engine assimilates both in one
	// parallel run.
	run, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"Nokia", "Huawei"}, Scale: scale, Workers: 2,
	})
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	nokia, huawei := run.Results[0], run.Results[1]
	nokiaAnns := nassim.GroundTruthAnnotations(nokia.Model, nassim.AnnotationCount("Nokia"), 77)
	huaweiAnns := nassim.GroundTruthAnnotations(huawei.Model, nassim.AnnotationCount("Huawei"), 77)

	ks := []int{1, 3, 5, 10, 20, 30}
	fmt.Printf("Mapping setting: Nokia-UDM (%d annotations; NetBERT fine-tuned on %d Huawei pairs)\n\n",
		len(nokiaAnns), len(huaweiAnns))
	fmt.Printf("%-12s", "Model")
	for _, k := range ks {
		fmt.Printf("  r@%-3d", k)
	}
	fmt.Println("    MRR")
	for _, kind := range nassim.AllModelKinds() {
		mp, err := nassim.NewMapper(u, kind)
		if err != nil {
			nassim.Fatal(errlog, err.Error())
		}
		if kind == nassim.ModelNetBERT || kind == nassim.ModelIRNetBERT {
			if _, err := mp.FineTune(huawei.VDM, u, huaweiAnns, 10, 1, 77); err != nil {
				nassim.Fatal(errlog, err.Error())
			}
		}
		res := nassim.Evaluate(mp, nokia.VDM, u, nokiaAnns, ks)
		fmt.Printf("%-12s", res.Model)
		for _, k := range ks {
			fmt.Printf("  %5.1f", res.Recall[k])
		}
		fmt.Printf("  %.4f\n", res.MRR)
	}
	fmt.Println("\nExpected shape (Table 5): IR+NetBERT >= NetBERT > IR+SBERT >= SBERT > IR >= SimCSE,")
	fmt.Println("with the supervised gain largest on this (Nokia) setting.")
}
