// Assimilate: the full SNA workflow of the paper — on-board a Huawei
// device into an SDN controller whose UDM already exists, using a NetBERT
// mapper fine-tuned on a previously assimilated vendor (Nokia), exactly
// the cross-vendor protocol of §7.3.
//
//	go run ./examples/assimilate
package main

import (
	"context"
	"fmt"

	"nassim"
)

// errlog is the structured logger errors are reported through; nassim.Fatal
// initializes stderr logging on first use so failures are never silent.
var errlog = nassim.Logger("examples/assimilate")

func main() {
	const scale = 0.1
	u := nassim.BuildUDM()
	fmt.Println("controller:", u.Summary())

	// Phases 0 and 1 in one engine run: Nokia (assimilated last quarter;
	// its expert-confirmed mappings are the training data for domain
	// adaptation) and Huawei (the new device) go through the staged
	// pipeline concurrently, two workers side by side.
	run, err := nassim.Assimilate(context.Background(), nassim.Options{
		Vendors: []string{"Nokia", "Huawei"}, Scale: scale, Workers: 2,
	})
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	nokia, hw := run.Results[0], run.Results[1]
	nokiaAnns := nassim.GroundTruthAnnotations(nokia.Model, nassim.AnnotationCount("Nokia"), 7)
	fmt.Printf("previously assimilated: %s (%d expert-confirmed mappings)\n",
		nokia.VDM.Summary(), len(nokiaAnns))
	fmt.Printf("new device: %s (%d manual errors caught and corrected)\n",
		hw.VDM.Summary(), hw.PreCorrectionInvalid)

	// Phase 2: VDM-UDM mapping with the domain-adapted model.
	mp, err := nassim.NewMapper(u, nassim.ModelIRNetBERT)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	stats, err := mp.FineTune(nokia.VDM, u, nokiaAnns, 10, 1, 7)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	fmt.Println("domain adaptation:", stats)

	// The Mapper recommends; the engineer reviews. Measure how much of
	// the manual-searching the engineer skips.
	hwAnns := nassim.GroundTruthAnnotations(hw.Model, nassim.AnnotationCount("Huawei"), 7)
	res := nassim.Evaluate(mp, hw.VDM, u, hwAnns, []int{1, 10})
	fmt.Printf("mapping quality: recall@1=%.1f%% recall@10=%.1f%% over %d parameters\n",
		res.Recall[1], res.Recall[10], res.N)
	fmt.Printf("=> engineers consult the manual only %.1f%% of the time: %.1fx acceleration (paper: 9.1x at 89%%)\n",
		100-res.Recall[10], nassim.AccelerationFactor(res.Recall[10]))

	// Show what the engineer actually sees for one parameter.
	ctx := nassim.ExtractContext(hw.VDM, hwAnns[0].Param)
	fmt.Println("\nexample recommendation list (rich context, directly reviewable):")
	fmt.Print(nassim.Explain(ctx, mp.Recommend(ctx, 5)))
	fmt.Printf("  ground truth: %s\n", hwAnns[0].AttrID)
}
