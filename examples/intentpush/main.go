// Intentpush: the payoff of SNA (§2.1, §8.3) — after assimilating two
// vendors, the SDN controller configures both through one UDM-level
// intent, translating it into each vendor's own CLI dialect, pushing over
// TCP and verifying through the show command. "The controller should
// execute correct configuration commands to put the change into effect on
// the targeted devices regardless of their vendors."
//
//	go run ./examples/intentpush
package main

import (
	"context"
	"fmt"
	"strings"

	"nassim"
)

// errlog is the structured logger errors are reported through; nassim.Fatal
// initializes stderr logging on first use so failures are never silent.
var errlog = nassim.Logger("examples/intentpush")

// onboard assimilates a vendor, serves its simulated device over TCP and
// registers it with the controller.
func onboard(ctrl *nassim.Controller, name, vendor string) (nassim.Binding, func(), error) {
	asr, err := nassim.AssimilateVendor(context.Background(), vendor, 0.05)
	if err != nil {
		return nil, nil, err
	}
	// In production the binding is the expert-reviewed Mapper output; the
	// ground-truth annotations play the confirmed mapping here.
	binding := nassim.BindingFromAnnotations(
		nassim.GroundTruthAnnotations(asr.Model, 200, 21))

	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		return nil, nil, err
	}
	srv, err := nassim.ServeDevice(dev, "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	client, err := nassim.DialDevice(srv.Addr())
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	cleanup := func() { client.Close(); srv.Close() }
	if err := nassim.RegisterDevice(ctrl, name, vendor, asr.VDM, binding,
		client, dev.ShowConfigCommand()); err != nil {
		cleanup()
		return nil, nil, err
	}
	fmt.Printf("on-boarded %-10s (%s device at %s, binding covers %d UDM attributes)\n",
		name, vendor, srv.Addr(), len(binding))
	return binding, cleanup, nil
}

func main() {
	ctrl := nassim.NewController(7)
	hwBinding, cleanup1, err := onboard(ctrl, "dc1-core-1", "Huawei")
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	defer cleanup1()
	nkBinding, cleanup2, err := onboard(ctrl, "dc1-core-2", "Nokia")
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	defer cleanup2()

	// Intents both bindings cover.
	var shared []string
	for id := range hwBinding {
		if _, ok := nkBinding[id]; ok {
			shared = append(shared, id)
		}
	}
	intents := []nassim.Intent{}
	for _, id := range shared {
		if strings.HasSuffix(id, "as-number") {
			intents = append(intents, nassim.Intent{AttrID: id, Value: "65001"})
		}
		if strings.HasSuffix(id, "hold-time") {
			intents = append(intents, nassim.Intent{AttrID: id, Value: "180"})
		}
		if len(intents) >= 2 {
			break
		}
	}
	if len(intents) == 0 && len(shared) > 0 {
		intents = append(intents, nassim.Intent{AttrID: shared[0], Value: "7"})
	}

	for _, in := range intents {
		fmt.Printf("\nintent: set %s = %s on every device\n", in.AttrID, in.Value)
		results, err := ctrl.ApplyAll(in)
		if err != nil {
			nassim.Fatal(errlog, err.Error())
		}
		for _, r := range results {
			fmt.Printf("  %-10s navigated %d views, pushed %q (verified=%v)\n",
				r.Device, len(r.Chain), r.CLI, r.Verified)
		}
	}
	fmt.Println("\nsame intent, different vendor dialects, both verified — the last mile bridged.")
}
