// Yangbridge: the §8.1/§8.2 extension — assimilate a vendor from its
// native YANG modules instead of its CLI manual, reusing the unchanged
// Validator and Mapper ("the core 'Parsing-Validating-Mapping' philosophy
// of NAssim can also be applied" to YANG, as the paper predicts).
//
//	go run ./examples/yangbridge
package main

import (
	"context"
	"fmt"
	"strings"

	"nassim"
)

// errlog is the structured logger errors are reported through; nassim.Fatal
// initializes stderr logging on first use so failures are never silent.
var errlog = nassim.Logger("examples/yangbridge")

func main() {
	const scale = 0.05
	model, err := nassim.SyntheticModel("Huawei", scale)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}

	// 1. The vendor's native YANG repository (synthetic substitute).
	sources := nassim.SyntheticYANG(model)
	fmt.Printf("vendor YANG repository: %d modules\n", len(sources))
	fmt.Println("--- excerpt of", sources[0].Name, "---")
	lines := strings.SplitN(sources[0].Text, "\n", 14)
	fmt.Println(strings.Join(lines[:len(lines)-1], "\n"))
	fmt.Println("  ...")

	// 2. Parse every module and bridge into the corpus format.
	var modules []*nassim.YANGModule
	leaves := 0
	for _, src := range sources {
		m, err := nassim.ParseYANG(src.Text)
		if err != nil {
			nassim.Fatal(errlog, err.Error(), "source", src.Name)
		}
		leaves += len(m.Leaves())
		modules = append(modules, m)
	}
	bridge := nassim.BridgeYANG("Huawei", modules)
	fmt.Printf("\nbridged: %d data leaves -> %d corpora, %d explicit hierarchy edges\n",
		leaves, len(bridge.Corpora), len(bridge.Edges))

	// 3. The unchanged Validator consumes the bridged corpus (YANG's tree
	// structure plays the role of Nokia-style explicit hierarchy).
	vdm, report := nassim.BuildVDM(context.Background(), "Huawei", bridge.Corpora, bridge.Edges)
	fmt.Println("validated:", vdm.Summary())
	fmt.Println("derivation:", report)

	// 4. The unchanged Mapper maps YANG leaves to the UDM.
	u := nassim.BuildUDM()
	mp, err := nassim.NewMapper(u, nassim.ModelIRSBERT)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	anns := nassim.YANGAnnotations(model, bridge,
		nassim.GroundTruthAnnotations(model, 50, 3))
	res := nassim.Evaluate(mp, vdm, u, anns, []int{1, 10})
	fmt.Printf("mapping quality from YANG alone: recall@1=%.1f%% recall@10=%.1f%% (n=%d)\n",
		res.Recall[1], res.Recall[10], res.N)

	ctx := nassim.ExtractContext(vdm, anns[0].Param)
	fmt.Println("\nexample recommendation for a YANG leaf:")
	fmt.Print(nassim.Explain(ctx, mp.Recommend(ctx, 3)))
	fmt.Printf("  ground truth: %s\n", anns[0].AttrID)

	// 5. Configure the YANG device through NETCONF (the protocol these
	// models exist for, §8.1): push the mapped leaf and read it back.
	store := nassim.NewNetconfStore(modules)
	srv, err := nassim.ServeNetconf(store, "127.0.0.1:0")
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	defer srv.Close()
	nc, err := nassim.DialNetconf(srv.Addr())
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	defer nc.Close()
	fmt.Printf("\nNETCONF session %s open against %s\n", nc.SessionID, srv.Addr())

	origin := bridge.Origin[anns[0].Param.Corpus]
	var ns string
	for _, m := range modules {
		if m.Name == origin.Module {
			ns = m.Namespace
		}
	}
	value := "7"
	if err := nc.EditConfig(ns, origin.Path, origin.Leaf, value); err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	entries, err := nc.GetConfig(modules)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	for _, e := range entries {
		fmt.Printf("edit-config pushed and get-config confirms: %s\n", e)
	}
}
