// Empirical: the §5.3 validation loop against a live device — validate the
// derived VDM with configuration files from running devices, then exercise
// the commands no running device uses by generating CGM instances and
// issuing them to a (simulated) device over TCP, verifying each through
// the device's show command.
//
//	go run ./examples/empirical
package main

import (
	"context"
	"fmt"

	"nassim"
)

// errlog is the structured logger errors are reported through; nassim.Fatal
// initializes stderr logging on first use so failures are never silent.
var errlog = nassim.Logger("examples/empirical")

func main() {
	const scale = 0.05
	ctx := context.Background()

	// Build the validated VDM for Huawei.
	asr, err := nassim.AssimilateVendor(ctx, "Huawei", scale)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	fmt.Println("validated model:", asr.VDM.Summary())

	// Stage 1 (Figure 8): validate against datacenter configuration files.
	files, ok := nassim.SyntheticConfigs(asr.Model, scale)
	if !ok {
		nassim.Fatal(errlog, "no configuration corpus for vendor")
	}
	rep := nassim.ValidateConfigs(ctx, asr.VDM, files)
	fmt.Println("config-file validation:", rep)
	fmt.Printf("datacenter skew: the fleet exercises %d of %d command templates\n",
		rep.UsedTemplates(), len(asr.VDM.Corpora))

	// Stage 2: the unused commands are tested on a live device. Spin up
	// the simulated device over TCP (the paper reaches real devices over
	// Telnet) and drive the generated instances through it.
	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	srv, err := nassim.ServeDevice(dev, "127.0.0.1:0")
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	defer srv.Close()
	fmt.Println("simulated device listening on", srv.Addr())

	client, err := nassim.DialDevice(srv.Addr())
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	defer client.Close()
	fmt.Printf("connected to %s device; readback via %q\n", client.Vendor(), dev.ShowConfigCommand())

	live, err := nassim.TestUnusedCommands(ctx, asr.VDM, rep.UsedCorpora, client, dev.ShowConfigCommand(), 2, 42)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	fmt.Printf("live testing: %d generated instances issued, %d accepted, %d verified via show command\n",
		live.Tested, live.Accepted, live.Verified)
	fmt.Printf("%d verified instances become empirical configurations for the next validation round\n",
		len(live.NewConfigLines))
	for i, line := range live.NewConfigLines {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(live.NewConfigLines)-5)
			break
		}
		fmt.Printf("  verified: %s\n", line)
	}
}
