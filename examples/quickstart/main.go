// Quickstart: the smallest end-to-end use of the nassim public API — take
// a vendor's manual pages, parse them into the vendor-independent corpus,
// run the Validator, and look at what it found.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"nassim"
)

// errlog is the structured logger errors are reported through; nassim.Fatal
// initializes stderr logging on first use so failures are never silent.
var errlog = nassim.Logger("examples/quickstart")

func main() {
	// 1. Obtain the manual. Real deployments scrape the vendor's online
	// command reference; here the synthetic substrate renders one (with
	// the same CSS-class diversity and human-writing errors).
	model, err := nassim.SyntheticModel("H3C", 0.1)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	pages := nassim.SyntheticManual(model)
	fmt.Printf("manual: %d pages of the synthetic %s command reference\n", len(pages), model.Vendor)
	ctx := context.Background()

	// 2. Parse with the vendor's parser; the TDD completeness tests run
	// automatically and report anything the parser missed.
	parsed, err := nassim.ParseManual(ctx, "H3C", pages)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	fmt.Printf("parser completeness: passed=%v\n", parsed.Completeness.Passed())

	// 3. Validate: formal syntax validation catches the manual's errors;
	// hierarchy derivation recovers the view tree from example snippets.
	vdm, report := nassim.BuildVDM(ctx, "H3C", parsed.Corpora, parsed.Hierarchy)
	fmt.Println(vdm.Summary())
	fmt.Println("derivation:", report)

	// 4. The flagged templates go to a NetOps expert with candidate fixes.
	for i, ic := range vdm.InvalidCLIs {
		if i >= 3 {
			fmt.Printf("  ... and %d more flagged templates\n", len(vdm.InvalidCLIs)-3)
			break
		}
		fmt.Printf("flagged: %v\n", ic.Err)
		for _, s := range ic.Err.Suggestions {
			fmt.Println("  candidate fix:", s)
		}
	}

	// 5. Apply the expert's corrections and rebuild: the validated VDM.
	fixes := nassim.ExpertCorrections(model, vdm.InvalidCLIs)
	applied, err := nassim.ApplyCorrections(parsed.Corpora, fixes)
	if err != nil {
		nassim.Fatal(errlog, err.Error())
	}
	vdm, _ = nassim.BuildVDM(ctx, "H3C", parsed.Corpora, parsed.Hierarchy)
	fmt.Printf("after %d expert corrections: %s\n", applied, vdm.Summary())
	if issues := nassim.ValidateHierarchy(vdm); len(issues) == 0 {
		fmt.Println("hierarchy consistency: OK — the VDM is ready for the Mapper")
	} else {
		fmt.Println("hierarchy issues:", issues)
	}
}
