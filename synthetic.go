package nassim

import (
	"fmt"
	"math/rand/v2"

	"nassim/internal/configgen"
	"nassim/internal/device"
	"nassim/internal/devmodel"
	"nassim/internal/manualgen"
	"nassim/internal/udm"
	"nassim/internal/vdm"
)

// This file exposes the synthetic substrates that replace the paper's
// proprietary inputs (vendor manuals, datacenter configuration files, real
// devices, the expert-built UDM and its annotations). Everything derives
// from one ground-truth DeviceModel per vendor, so pipeline outputs are
// checkable against known truth. See DESIGN.md's substitution table.

// SyntheticModel generates the ground-truth device model for a vendor at
// the given scale (1.0 reproduces the Table 4 sizes: 12 874 Huawei
// commands, 14 046 Nokia, ...; smaller scales shrink proportionally).
func SyntheticModel(vendor string, scale float64) (*DeviceModel, error) {
	v, err := vendorByName(vendor)
	if err != nil {
		return nil, err
	}
	cfg := devmodel.PaperConfig(v)
	if scale < 1.0 {
		cfg = cfg.Scaled(scale)
	}
	return devmodel.Generate(cfg), nil
}

func vendorByName(vendor string) (devmodel.Vendor, error) {
	for _, v := range append(append([]devmodel.Vendor{}, devmodel.AllVendors...), devmodel.Juniper) {
		if string(v) == vendor {
			return v, nil
		}
	}
	return "", fmt.Errorf("nassim: unknown vendor %q (have %v plus Juniper)", vendor, Vendors())
}

// SyntheticManual renders the model's online user manual: per-vendor HTML
// with the Table 1 CSS conventions, the §2.2 intra-vendor inconsistencies,
// and the injected human-writing errors the Validator must catch.
func SyntheticManual(m *DeviceModel) []Page {
	man := manualgen.Render(m)
	pages := make([]Page, len(man.Pages))
	for i, pg := range man.Pages {
		pages[i] = Page{URL: pg.URL, HTML: pg.HTML}
	}
	return pages
}

// SyntheticConfigs generates running-device configuration files with the
// datacenter skew of §7.2 (many files, few distinct templates). The second
// return is false for vendors without a configuration corpus in the paper
// (Cisco, H3C).
func SyntheticConfigs(m *DeviceModel, scale float64) ([]ConfigFile, bool) {
	cfg, ok := configgen.PaperConfig(m.Vendor)
	if !ok {
		return nil, false
	}
	if scale < 1.0 {
		cfg = cfg.Scaled(scale)
	}
	return configgen.Generate(m, cfg).Files, true
}

// BuildUDM builds the unified device model from the shared concept space.
// The paper's UDM is proprietary; this one is constructed exactly like it
// (attributes with expert annotations, grouped in feature sub-trees) but
// with known ground truth.
func BuildUDM() *UDM {
	return udm.Build(devmodel.Concepts())
}

// ExpertCorrections simulates the expert intervention of §5.1: for every
// corpus whose CLI field the syntax validator flagged, the expert
// reconstructs the correct template (in the paper by judgement and
// trial-and-error on real devices; here from ground truth — the device
// simulator is built from the same truth, so the two agree). Corpora must
// be in manual page order.
func ExpertCorrections(m *DeviceModel, flagged []vdm.InvalidCLI) []Correction {
	var out []Correction
	for _, ic := range flagged {
		if ic.Corpus >= 0 && ic.Corpus < len(m.Commands) {
			out = append(out, Correction{Corpus: ic.Corpus, CLI: m.Commands[ic.Corpus].Template})
		}
	}
	return out
}

// AnnotationCount returns the paper's expert-annotation budget per vendor
// (§7.3: 381 for Huawei, 110 for Nokia); other vendors default to 100.
func AnnotationCount(vendor string) int {
	switch vendor {
	case string(devmodel.Huawei):
		return 381
	case string(devmodel.Nokia):
		return 110
	}
	return 100
}

// GroundTruthAnnotations derives up to limit expert annotations from the
// model's concept realizations: each annotation pairs the VDM parameter
// realizing a concept with that concept's UDM attribute. The selection is
// a deterministic seeded shuffle, standing in for which pairs the paper's
// experts happened to label. Corpora must be in manual page order (corpus
// index == command index).
func GroundTruthAnnotations(m *DeviceModel, limit int, seed uint64) []Annotation {
	cmdIndex := map[string]int{}
	for i, c := range m.Commands {
		cmdIndex[c.ID] = i
	}
	var all []Annotation
	for _, con := range m.Concepts {
		ref, ok := m.Realizes[con.ID]
		if !ok {
			continue
		}
		idx, ok := cmdIndex[ref.CommandID]
		if !ok {
			continue
		}
		all = append(all, Annotation{
			Param:  Parameter{Corpus: idx, Name: ref.Param},
			AttrID: con.ID,
		})
	}
	r := rand.New(rand.NewPCG(seed, 0xa77))
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	return all
}

// NewDevice builds a simulated device from a ground-truth model.
func NewDevice(m *DeviceModel) (*Device, error) { return device.New(m) }

// ServeDevice serves a simulated device over TCP ("127.0.0.1:0" picks an
// ephemeral port).
func ServeDevice(d *Device, addr string) (*DeviceServer, error) { return device.Serve(d, addr) }

// DialDevice opens a CLI session against a served device.
func DialDevice(addr string) (*DeviceClient, error) { return device.Dial(addr) }

// AssimilationResult bundles the artifacts of one vendor's pipeline run.
// Artifacts may come from the engine's cache and are shared by reference:
// treat them as read-only. Parsed holds the pre-correction corpora exactly
// as the parser produced them; VDM.Corpora carries the expert-corrected
// templates the model was derived from.
type AssimilationResult struct {
	Model        *DeviceModel
	Parsed       *ParseResult
	VDM          *VDM
	DeriveReport *DeriveReport
	// PreCorrection counts the invalid CLIs found before expert correction
	// (the Table 4 "#Invalid CLI Commands" figure).
	PreCorrectionInvalid int
	// CorrectionsApplied counts the expert fixes folded into the rebuild.
	CorrectionsApplied int
	// Empirical and Live are set when Options enabled those stages.
	Empirical *EmpiricalReport
	Live      *LiveReport
	// StagesRun and StagesSkipped record which pipeline stages executed
	// and which were satisfied from the artifact cache.
	StagesRun     []PipelineStage
	StagesSkipped []PipelineStage
	// DegradedStages maps each stage that yielded a partial (degraded)
	// artifact — e.g. live testing against a device that kept dropping
	// connections — to its machine-readable reason. Degraded artifacts are
	// never cached; a later run re-executes those stages.
	DegradedStages map[PipelineStage]string
	// PagesHash and ConfigHash are the content hashes of the job's inputs
	// — the same sha256 hashes the artifact cache keys chain from — so
	// callers (the run manifest, the serving daemon) can name exactly
	// what was assimilated.
	PagesHash  string
	ConfigHash string
}

// Degraded reports whether any stage of this vendor's run produced a
// degraded artifact.
func (r *AssimilationResult) Degraded() bool { return len(r.DegradedStages) > 0 }
