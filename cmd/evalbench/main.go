// Command evalbench regenerates the paper's evaluation artifacts: every
// data-bearing table (1, 2, 4, 5, 6) and the §7.3 headline acceleration.
//
// Usage:
//
//	evalbench -table 4 -scale 0.1      # Table 4 at a tenth of paper scale
//	evalbench -table 5                 # Table 5 (Mapper, paper protocol)
//	evalbench -table 6                 # appendix Table 6 (dense k grid + MRR)
//	evalbench -headline                # recall@10 -> acceleration factor
//	evalbench -all -scale 0.1          # everything
//
// Scale 1.0 reproduces the paper-scale corpora (12 874 Huawei commands,
// 14 046 Nokia, ...); smaller scales run the same pipeline on
// proportionally smaller models.
package main

import (
	"flag"
	"fmt"
	"os"

	"nassim/internal/eval"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1, 2, 4, 5 or 6)")
	headline := flag.Bool("headline", false, "compute the 9.1x-style acceleration headline")
	all := flag.Bool("all", false, "regenerate every artifact")
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 = paper scale)")
	seed := flag.Uint64("seed", 77, "experiment seed")
	checks := flag.Bool("checks", false, "run the result-shape sanity checks on the mapper tables")
	yangExp := flag.Bool("yang", false, "run the E10 extension: CLI-manual vs native-YANG mapping")
	ablate := flag.Bool("ablate", false, "run the design-choice ablations (weights, context rows, epochs, negatives)")
	curve := flag.Bool("curve", false, "run the E11 continuous-improvement learning curve")
	jsonOut := flag.String("json", "", "also export the run's results as JSON to this file")
	flag.Parse()

	if !*all && *table == 0 && !*headline && !*yangExp && !*ablate && !*curve {
		flag.Usage()
		os.Exit(2)
	}

	doc := &eval.ResultsDocument{Scale: *scale, Seed: *seed}
	defer func() {
		if *jsonOut == "" {
			return
		}
		data, err := doc.ExportJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalbench: export:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "evalbench: export:", err)
			os.Exit(1)
		}
		fmt.Println("wrote results to", *jsonOut)
	}()

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "evalbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *all || *table == 1 {
		fmt.Println(eval.FormatTable1(eval.Table1()))
	}
	if *all || *table == 2 {
		fmt.Println(eval.FormatTable2())
	}
	if *all || *table == 4 {
		run("table 4", func() error {
			rows, err := eval.Table4(*scale)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatTable4(rows))
			doc.Table4 = rows
			return nil
		})
	}
	if *all || *yangExp {
		run("yang experiment", func() error {
			cmp, err := eval.YANGExperiment("Huawei", *scale, *seed, nil)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatYANGComparison(cmp))
			return nil
		})
	}
	if *all || *ablate {
		run("ablations", func() error {
			rep, err := eval.Ablate("Nokia", *scale, *seed, nil)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatAblation(rep))
			return nil
		})
	}
	if *all || *curve {
		run("learning curve", func() error {
			ks := []int{1, 10}
			points, err := eval.LearningCurve("Nokia", *scale, *seed, 20, ks)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatLearningCurve("Nokia", points, ks))
			return nil
		})
	}
	needMapper := *all || *table == 5 || *table == 6 || *headline
	if needMapper {
		ks := eval.Table5Ks
		withMRR := false
		if *table == 6 || *all {
			ks = eval.Table6Ks
			withMRR = true
		}
		run("mapper evaluation", func() error {
			tasks, err := eval.MapperEval(eval.MapperOptions{
				Scale: *scale, Ks: ks, Seed: *seed})
			if err != nil {
				return err
			}
			doc.Mapper = tasks
			if *all || *table == 5 || *table == 6 {
				label := "Table 5"
				if withMRR {
					label = "Table 5/6"
				}
				fmt.Printf("%s: Mapper performance (scale %.2f)\n", label, *scale)
				fmt.Println(eval.FormatMapper(tasks, withMRR))
			}
			if *all || *headline {
				r10, accel := eval.Headline(tasks)
				doc.Headline = &eval.HeadlineDoc{Recall10: r10, Acceleration: accel}
				fmt.Printf("Headline: best NetBERT-family recall@10 on Huawei-UDM = %.1f%%\n", r10)
				fmt.Printf("          => engineers consult the manual %.1f%% of the time\n", 100-r10)
				fmt.Printf("          => mapping phase acceleration = %.1fx (paper: 89%% -> 9.1x)\n", accel)
			}
			if *checks || *all {
				v := eval.SanityChecks(tasks)
				doc.Checks = v
				if len(v) == 0 {
					fmt.Println("Result-shape sanity checks: all passed")
				} else {
					fmt.Println("Result-shape sanity checks: VIOLATIONS")
					for _, msg := range v {
						fmt.Println("  -", msg)
					}
				}
			}
			return nil
		})
	}
}
