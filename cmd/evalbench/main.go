// Command evalbench regenerates the paper's evaluation artifacts: every
// data-bearing table (1, 2, 4, 5, 6) and the §7.3 headline acceleration.
//
// Usage:
//
//	evalbench -table 4 -scale 0.1      # Table 4 at a tenth of paper scale
//	evalbench -table 5                 # Table 5 (Mapper, paper protocol)
//	evalbench -table 6                 # appendix Table 6 (dense k grid + MRR)
//	evalbench -headline                # recall@10 -> acceleration factor
//	evalbench -stages                  # per-stage timing table + BENCH_telemetry.json
//	evalbench -all -scale 0.1          # everything
//
// Run without flags, evalbench times the pipeline stages (equivalent to
// -stages). Scale 1.0 reproduces the paper-scale corpora (12 874 Huawei
// commands, 14 046 Nokia, ...); smaller scales run the same pipeline on
// proportionally smaller models.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"nassim"
	"nassim/internal/eval"
	"nassim/internal/telemetry"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1, 2, 4, 5 or 6)")
	headline := flag.Bool("headline", false, "compute the 9.1x-style acceleration headline")
	all := flag.Bool("all", false, "regenerate every artifact")
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 = paper scale)")
	seed := flag.Uint64("seed", 77, "experiment seed")
	checks := flag.Bool("checks", false, "run the result-shape sanity checks on the mapper tables")
	yangExp := flag.Bool("yang", false, "run the E10 extension: CLI-manual vs native-YANG mapping")
	ablate := flag.Bool("ablate", false, "run the design-choice ablations (weights, context rows, epochs, negatives)")
	curve := flag.Bool("curve", false, "run the E11 continuous-improvement learning curve")
	stages := flag.Bool("stages", false, "time each pipeline stage and export BENCH_telemetry.json")
	vendor := flag.String("vendor", "Huawei", "vendor for the -stages pipeline run")
	telemetryOut := flag.String("telemetry-out", "BENCH_telemetry.json", "stage-timing export path for -stages")
	manifestOut := flag.String("manifest-out", "", "also write the -stages assimilation's run manifest (schema "+nassim.RunReportSchema+") to this file")
	jsonOut := flag.String("json", "", "also export the run's results as JSON to this file")
	flag.Parse()

	// Bare invocation: time the pipeline stages instead of printing usage.
	if !*all && *table == 0 && !*headline && !*yangExp && !*ablate && !*curve && !*stages {
		*stages = true
		if *scale == 1.0 {
			*scale = 0.1
		}
	}

	if *stages || *all {
		if err := runStages(*vendor, *scale, *seed, *telemetryOut, *manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, "evalbench: stages:", err)
			os.Exit(1)
		}
		if !*all && *table == 0 && !*headline && !*yangExp && !*ablate && !*curve {
			return
		}
	}

	doc := &eval.ResultsDocument{Scale: *scale, Seed: *seed}
	defer func() {
		if *jsonOut == "" {
			return
		}
		data, err := doc.ExportJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalbench: export:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "evalbench: export:", err)
			os.Exit(1)
		}
		fmt.Println("wrote results to", *jsonOut)
	}()

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "evalbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *all || *table == 1 {
		fmt.Println(eval.FormatTable1(eval.Table1()))
	}
	if *all || *table == 2 {
		fmt.Println(eval.FormatTable2())
	}
	if *all || *table == 4 {
		run("table 4", func() error {
			rows, err := eval.Table4(*scale)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatTable4(rows))
			doc.Table4 = rows
			return nil
		})
	}
	if *all || *yangExp {
		run("yang experiment", func() error {
			cmp, err := eval.YANGExperiment("Huawei", *scale, *seed, nil)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatYANGComparison(cmp))
			return nil
		})
	}
	if *all || *ablate {
		run("ablations", func() error {
			rep, err := eval.Ablate("Nokia", *scale, *seed, nil)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatAblation(rep))
			return nil
		})
	}
	if *all || *curve {
		run("learning curve", func() error {
			ks := []int{1, 10}
			points, err := eval.LearningCurve("Nokia", *scale, *seed, 20, ks)
			if err != nil {
				return err
			}
			fmt.Println(eval.FormatLearningCurve("Nokia", points, ks))
			return nil
		})
	}
	needMapper := *all || *table == 5 || *table == 6 || *headline
	if needMapper {
		ks := eval.Table5Ks
		withMRR := false
		if *table == 6 || *all {
			ks = eval.Table6Ks
			withMRR = true
		}
		run("mapper evaluation", func() error {
			tasks, err := eval.MapperEval(eval.MapperOptions{
				Scale: *scale, Ks: ks, Seed: *seed})
			if err != nil {
				return err
			}
			doc.Mapper = tasks
			if *all || *table == 5 || *table == 6 {
				label := "Table 5"
				if withMRR {
					label = "Table 5/6"
				}
				fmt.Printf("%s: Mapper performance (scale %.2f)\n", label, *scale)
				fmt.Println(eval.FormatMapper(tasks, withMRR))
			}
			if *all || *headline {
				r10, accel := eval.Headline(tasks)
				doc.Headline = &eval.HeadlineDoc{Recall10: r10, Acceleration: accel}
				fmt.Printf("Headline: best NetBERT-family recall@10 on Huawei-UDM = %.1f%%\n", r10)
				fmt.Printf("          => engineers consult the manual %.1f%% of the time\n", 100-r10)
				fmt.Printf("          => mapping phase acceleration = %.1fx (paper: 89%% -> 9.1x)\n", accel)
			}
			if *checks || *all {
				v := eval.SanityChecks(tasks)
				doc.Checks = v
				if len(v) == 0 {
					fmt.Println("Result-shape sanity checks: all passed")
				} else {
					fmt.Println("Result-shape sanity checks: VIOLATIONS")
					for _, msg := range v {
						fmt.Println("  -", msg)
					}
				}
			}
			return nil
		})
	}
}

// runStages drives one synthetic assimilation with per-stage wall-clock
// timing — parse, syntax+CGM, hierarchy derivation (corrections folded
// in), empirical validation, mapper fine-tune and recommendation,
// controller intent — prints the timing table and exports the stable
// BENCH_telemetry.json document (schema nassim-telemetry-bench/v1).
//
// The VDM-construction stages run through the pipeline engine, which
// caches the parse and syntax artifacts and derives the corrected VDM
// exactly once (the previous hand-sequenced flow rebuilt it twice).
func runStages(vendor string, scale float64, seed uint64, out, manifestOut string) error {
	ctx := context.Background()
	st := telemetry.NewStageTimer()
	res, err := nassim.Assimilate(ctx, nassim.Options{
		Vendors: []string{vendor}, Scale: scale, Validate: true,
		Seed: seed, Timer: st, Report: manifestOut != "",
	})
	if err != nil {
		return err
	}
	if manifestOut != "" && res.Report != nil {
		if err := res.Report.WriteFile(manifestOut); err != nil {
			return err
		}
		fmt.Printf("run manifest: %s (%s)\n", manifestOut, res.Report.Summary())
	}
	asr := res.Results[0]
	m, v := asr.Model, asr.VDM

	u := nassim.BuildUDM()
	mp, err := nassim.NewMapper(u, nassim.ModelIRNetBERT)
	if err != nil {
		return err
	}
	anns := nassim.GroundTruthAnnotations(m, 50, seed)
	st.Time(telemetry.StageMapFineTune, func() {
		_, err = mp.FineTune(v, u, anns, 4, 2, seed)
	})
	if err != nil {
		return err
	}
	recN := len(anns)
	if recN > 10 {
		recN = 10
	}
	st.Time(telemetry.StageMapRecommend, func() {
		pcs := make([]nassim.ParamContext, recN)
		for i, ann := range anns[:recN] {
			pcs[i] = nassim.ExtractContext(v, ann.Param)
		}
		_, err = mp.MapAll(ctx, pcs, 10)
	})
	if err != nil {
		return err
	}

	dev, err := nassim.NewDevice(m)
	if err != nil {
		return err
	}
	ctrl := nassim.NewController(seed)
	binding := nassim.BindingFromAnnotations(nassim.GroundTruthAnnotations(m, 200, seed))
	if err := nassim.RegisterDevice(ctrl, "bench-device", vendor, v, binding,
		nassim.SessionExecutor(dev.NewSession()), dev.ShowConfigCommand()); err != nil {
		return err
	}
	st.Time(telemetry.StageControllerInt, func() {
		ids := make([]string, 0, len(binding))
		for id := range binding {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if _, aerr := ctrl.Apply("bench-device", nassim.Intent{AttrID: id, Value: "7"}); aerr == nil {
				break
			}
		}
	})

	fmt.Printf("Pipeline stage timing (%s, scale %.2f):\n%s", vendor, scale, st.Table())
	doc := telemetry.NewBenchDoc(vendor, scale, seed, st)
	data, err := doc.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote stage telemetry to %s (%d metric samples)\n\n", out, len(doc.Metrics))
	return nil
}
