// Command loadgen benchmarks a nassimd serving endpoint and emits a
// nassim-serve-bench/v1 document (BENCH_serve.json) for the benchdiff
// regression gate.
//
// Two phases:
//
//  1. dedup_8way — N concurrent byte-identical requests against a cold
//     key. The singleflight front must coalesce them onto exactly one
//     pipeline execution (asserted via /v1/stats and the X-Nassim-Dedup
//     headers).
//  2. warm closed-loop — a mixed vendor workload over a warm result
//     cache, measuring end-to-end latency (p50/p99/mean) and sustained
//     RPS of the zero-JSON warm path.
//
// With -addr empty, loadgen hosts the daemon in-process (its own
// listener on a loopback port), so `make bench-serve` needs no separate
// server. -check exits non-zero unless the dedup phase coalesced to one
// execution with a hit ratio >= 0.8 — the issue's acceptance criterion.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nassim/internal/serve"
)

// BenchSchema identifies the serving benchmark document.
const BenchSchema = "nassim-serve-bench/v1"

// benchDoc is the emitted BENCH_serve.json layout.
type benchDoc struct {
	Schema     string  `json:"schema"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	DurationMs float64 `json:"duration_ms"`
	RPS        float64 `json:"rps"`

	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`

	// DedupHitRatio covers the measured warm phase: the fraction of
	// requests answered without a pipeline execution.
	DedupHitRatio float64 `json:"dedup_hit_ratio"`

	Dedup8Way struct {
		Clients    int     `json:"clients"`
		Executions int64   `json:"executions"`
		HitRatio   float64 `json:"hit_ratio"`
	} `json:"dedup_8way"`

	Queue struct {
		MaxDepth int64 `json:"max_depth"`
		Shed     int64 `json:"shed"`
	} `json:"queue"`
}

func main() {
	addr := flag.String("addr", "", "nassimd address; empty hosts the daemon in-process")
	out := flag.String("out", "BENCH_serve.json", "benchmark document output path")
	manifestOut := flag.String("manifest-out", "", "also save the daemon's /v1/manifest here")
	vendors := flag.String("vendors", "Huawei,Cisco,Nokia,H3C", "comma-separated vendor cycle for the warm phase")
	scale := flag.Float64("scale", 0.02, "synthetic corpus scale")
	requests := flag.Int("requests", 400, "measured warm-phase request count")
	concurrency := flag.Int("concurrency", 8, "closed-loop client count (also the dedup fan-in)")
	check := flag.Bool("check", false, "exit non-zero unless dedup_8way coalesced to 1 execution with hit ratio >= 0.8")
	flag.Parse()

	if err := run(*addr, *out, *manifestOut, splitCSV(*vendors), *scale, *requests, *concurrency, *check); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, v := range bytes.Split([]byte(s), []byte(",")) {
		if t := string(bytes.TrimSpace(v)); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func run(addr, out, manifestOut string, vendors []string, scale float64, requests, concurrency int, check bool) error {
	base, shutdown, err := connect(addr)
	if err != nil {
		return err
	}
	defer shutdown()

	doc := benchDoc{Schema: BenchSchema}

	// Phase 1: dedup fan-in against a cold key.
	st0, err := stats(base)
	if err != nil {
		return err
	}
	req1 := serve.Request{Vendors: vendors[:1], Scale: scale}
	var hits atomic.Int64
	var errs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dedup, _, err := post(base, req1)
			if err != nil {
				errs.Add(1)
				return
			}
			if dedup == serve.DedupInflight || dedup == serve.DedupCache {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	st1, err := stats(base)
	if err != nil {
		return err
	}
	doc.Dedup8Way.Clients = concurrency
	doc.Dedup8Way.Executions = st1.Executions - st0.Executions
	doc.Dedup8Way.HitRatio = float64(hits.Load()) / float64(concurrency)
	fmt.Printf("loadgen: dedup_%dway: %d executions, hit ratio %.3f\n",
		concurrency, doc.Dedup8Way.Executions, doc.Dedup8Way.HitRatio)

	// Warm every vendor in the cycle once so the measured phase exercises
	// the warm (stored-bytes) path.
	for _, v := range vendors {
		if _, _, err := post(base, serve.Request{Vendors: []string{v}, Scale: scale}); err != nil {
			return fmt.Errorf("warm-up %s: %w", v, err)
		}
	}

	// Phase 2: closed-loop mixed workload over the warm cache.
	st2, err := stats(base)
	if err != nil {
		return err
	}
	latencies := make([]float64, requests)
	var next atomic.Int64
	t0 := time.Now()
	wg = sync.WaitGroup{}
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				req := serve.Request{Vendors: []string{vendors[i%len(vendors)]}, Scale: scale}
				r0 := time.Now()
				if _, _, err := post(base, req); err != nil {
					errs.Add(1)
					continue
				}
				latencies[i] = float64(time.Since(r0).Microseconds()) / 1000.0
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	st3, err := stats(base)
	if err != nil {
		return err
	}

	doc.Requests = requests
	doc.Errors = int(errs.Load())
	doc.DurationMs = float64(elapsed.Microseconds()) / 1000.0
	doc.RPS = float64(requests) / elapsed.Seconds()
	sort.Float64s(latencies)
	doc.LatencyP50Ms = percentile(latencies, 50)
	doc.LatencyP99Ms = percentile(latencies, 99)
	doc.LatencyMeanMs = mean(latencies)
	warmReqs := st3.Requests - st2.Requests
	warmExecs := st3.Executions - st2.Executions
	if warmReqs > 0 {
		doc.DedupHitRatio = float64(warmReqs-warmExecs) / float64(warmReqs)
	}
	doc.Queue.MaxDepth = st3.QueueMax
	doc.Queue.Shed = st3.Shed
	fmt.Printf("loadgen: warm phase: %d requests in %.0f ms (%.0f rps), p50 %.3f ms, p99 %.3f ms, dedup %.3f\n",
		requests, doc.DurationMs, doc.RPS, doc.LatencyP50Ms, doc.LatencyP99Ms, doc.DedupHitRatio)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: wrote %s\n", out)

	if manifestOut != "" {
		mb, err := get(base + "/v1/manifest")
		if err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		if err := os.WriteFile(manifestOut, mb, 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: wrote %s\n", manifestOut)
	}

	if check {
		if doc.Dedup8Way.Executions != 1 {
			return fmt.Errorf("check failed: dedup phase ran %d pipeline executions, want exactly 1", doc.Dedup8Way.Executions)
		}
		if doc.Dedup8Way.HitRatio < 0.8 {
			return fmt.Errorf("check failed: dedup hit ratio %.3f < 0.8", doc.Dedup8Way.HitRatio)
		}
		if doc.Errors > 0 {
			return fmt.Errorf("check failed: %d request errors", doc.Errors)
		}
		fmt.Println("loadgen: check passed (1 execution, hit ratio >= 0.8, no errors)")
	}
	return nil
}

// connect returns the base URL of the target daemon, hosting one
// in-process when addr is empty.
func connect(addr string) (string, func(), error) {
	if addr != "" {
		return "http://" + addr, func() {}, nil
	}
	s, err := serve.NewServer(serve.Config{
		Workers: 2,
		Runner:  serve.NewRunner(serve.RunnerConfig{Workers: 2}),
	})
	if err != nil {
		return "", nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: serve.Handler(s)}
	go hs.Serve(l)
	shutdown := func() {
		hs.Close()
		// Workers idle once the benchmark stops; drain promptly.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	return "http://" + l.Addr().String(), shutdown, nil
}

func post(base string, req serve.Request) (dedup string, body []byte, err error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", nil, err
	}
	resp, err := http.Post(base+"/v1/assimilate", "application/json", bytes.NewReader(b))
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return "", nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("POST status %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return resp.Header.Get(serve.HeaderDedup), body, nil
}

func stats(base string) (serve.Stats, error) {
	var st serve.Stats
	b, err := get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(b, &st)
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return b, nil
}

func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
