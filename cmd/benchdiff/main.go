// Command benchdiff is the bench regression gate: it compares committed
// BENCH_*.json baselines against freshly generated ones and exits non-zero
// when any metric worsened past its threshold.
//
//	benchdiff -baseline . -current out/                 # all BENCH_*.json pairs
//	benchdiff -baseline BENCH_mapper.json -current out/BENCH_mapper.json
//	benchdiff -baseline . -current out/ -json           # machine-readable report
//	benchdiff -baseline . -current out/ -threshold 0.2  # tighten the timing gate
//
// With directories, every BENCH_*.json in the baseline directory is paired
// with the file of the same name in the current directory; a baseline with
// no current counterpart fails the gate (a silently dropped benchmark is a
// regression too). Timings may grow and derived higher-better figures
// (speedups, utilization) may drop by the schema tolerances before the
// gate trips; see internal/benchdiff for the flattening rules per schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nassim/internal/benchdiff"
)

func main() {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	baseline := fs.String("baseline", "", "baseline BENCH_*.json file, or directory of them (required)")
	current := fs.String("current", "", "current BENCH_*.json file, or directory of them (required)")
	jsonOut := fs.Bool("json", false, "emit the comparison as JSON instead of a table")
	threshold := fs.Float64("threshold", 0, "allowed fractional timing growth (0 = schema default, "+
		fmt.Sprintf("%g", benchdiff.DefaultTimingTolerance)+")")
	derivedTol := fs.Float64("derived-threshold", 0, "allowed fractional drop of higher-better metrics (0 = default, "+
		fmt.Sprintf("%g", benchdiff.DefaultDerivedTolerance)+")")
	allowMissing := fs.Bool("allow-missing", false, "a baseline file with no current counterpart warns instead of failing")
	fs.Parse(os.Args[1:])
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		fs.Usage()
		os.Exit(2)
	}

	pairs, missing, err := pairUp(*baseline, *current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(pairs) == 0 && len(missing) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no BENCH_*.json baselines found in", *baseline)
		os.Exit(2)
	}
	tol := benchdiff.Tolerances{Timing: *threshold, Derived: *derivedTol}

	type fileResult struct {
		File   string            `json:"file"`
		Result *benchdiff.Result `json:"result"`
	}
	var results []fileResult
	failed := false
	for _, p := range pairs {
		base, err := os.ReadFile(p[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		cur, err := os.ReadFile(p[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		res, err := benchdiff.Compare(base, cur, tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", filepath.Base(p[0]), err)
			os.Exit(2)
		}
		results = append(results, fileResult{File: filepath.Base(p[0]), Result: res})
		if res.Failed() {
			failed = true
		}
	}

	if *jsonOut {
		doc := struct {
			Results      []fileResult `json:"results"`
			MissingFiles []string     `json:"missing_files,omitempty"`
			Failed       bool         `json:"failed"`
		}{results, missing, failed || (len(missing) > 0 && !*allowMissing)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&doc)
	} else {
		for _, fr := range results {
			fmt.Printf("%s: %s", fr.File, fr.Result.Table())
		}
		for _, f := range missing {
			fmt.Printf("%s: no current counterpart\n", f)
		}
		summary := "no regressions"
		if failed {
			summary = "REGRESSIONS FOUND"
		}
		fmt.Printf("benchdiff: %d file(s) compared: %s\n", len(results), summary)
	}
	if len(missing) > 0 && !*allowMissing {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// pairUp resolves the baseline/current arguments into file pairs. Both
// files, or both directories (paired by BENCH_*.json base name).
func pairUp(baseline, current string) (pairs [][2]string, missing []string, err error) {
	bi, err := os.Stat(baseline)
	if err != nil {
		return nil, nil, err
	}
	if !bi.IsDir() {
		ci, err := os.Stat(current)
		if err == nil && ci.IsDir() {
			current = filepath.Join(current, filepath.Base(baseline))
		}
		if _, err := os.Stat(current); err != nil {
			return nil, []string{filepath.Base(baseline)}, nil
		}
		return [][2]string{{baseline, current}}, nil, nil
	}
	ci, err := os.Stat(current)
	if err != nil {
		return nil, nil, err
	}
	if !ci.IsDir() {
		return nil, nil, fmt.Errorf("baseline %s is a directory but current %s is a file", baseline, current)
	}
	entries, err := os.ReadDir(baseline)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "BENCH_") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		cur := filepath.Join(current, n)
		if _, err := os.Stat(cur); err != nil {
			missing = append(missing, n)
			continue
		}
		pairs = append(pairs, [2]string{filepath.Join(baseline, n), cur})
	}
	return pairs, missing, nil
}
