// Command manualgen generates the synthetic vendor manual corpus: the
// ground-truth device model rendered as per-vendor HTML manual pages (with
// the Table 1 CSS conventions and injected human-writing errors), plus the
// parsed, validated and expert-curated corpus dataset in the released JSON
// format — the repository's analogue of the dataset the paper publishes.
//
// Usage:
//
//	manualgen -vendor Huawei -scale 0.05 -out ./manualdata
//	manualgen -vendor all -scale 0.02 -out ./manualdata -dataset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nassim"
	"nassim/internal/corpus"
)

func main() {
	vendor := flag.String("vendor", "all", `vendor ("Huawei", "Cisco", "Nokia", "H3C" or "all")`)
	scale := flag.Float64("scale", 0.05, "corpus scale (1.0 = paper scale)")
	out := flag.String("out", "manualdata", "output directory")
	dataset := flag.Bool("dataset", true, "also write the parsed+validated corpus dataset (JSON)")
	flag.Parse()

	vendors := nassim.Vendors()
	if *vendor != "all" {
		vendors = []string{*vendor}
	}
	for _, v := range vendors {
		if err := generate(v, *scale, *out, *dataset); err != nil {
			fmt.Fprintf(os.Stderr, "manualgen: %s: %v\n", v, err)
			os.Exit(1)
		}
	}
}

func generate(vendor string, scale float64, out string, dataset bool) error {
	m, err := nassim.SyntheticModel(vendor, scale)
	if err != nil {
		return err
	}
	pages := nassim.SyntheticManual(m)
	dir := filepath.Join(out, strings.ToLower(vendor), "pages")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, p := range pages {
		name := filepath.Join(dir, fmt.Sprintf("cmd-%05d.html", i))
		if err := os.WriteFile(name, []byte(p.HTML), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("%s: wrote %d manual pages to %s\n", vendor, len(pages), dir)
	if !dataset {
		return nil
	}
	// Parse, run the completeness tests, apply expert corrections, and
	// release the validated corpus — the dataset artifact of the paper.
	asr, err := nassim.AssimilateModel(context.Background(), m)
	if err != nil {
		return err
	}
	data, err := corpus.Marshal(asr.VDM.Corpora)
	if err != nil {
		return err
	}
	name := filepath.Join(out, strings.ToLower(vendor), "corpus.json")
	if err := os.WriteFile(name, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: wrote validated corpus dataset (%d corpora, %d invalid CLIs corrected, %d ambiguous views) to %s\n",
		vendor, len(asr.VDM.Corpora), asr.PreCorrectionInvalid, len(asr.VDM.AmbiguousViews()), name)
	return nil
}
