package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nassim/internal/corpus"
)

func TestGenerateWritesPagesAndDataset(t *testing.T) {
	out := t.TempDir()
	if err := generate("H3C", 0.02, out, true); err != nil {
		t.Fatal(err)
	}
	pages, err := os.ReadDir(filepath.Join(out, "h3c", "pages"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no pages written")
	}
	for _, e := range pages[:3] {
		if !strings.HasSuffix(e.Name(), ".html") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
	data, err := os.ReadFile(filepath.Join(out, "h3c", "corpus.json"))
	if err != nil {
		t.Fatal(err)
	}
	corpora, err := corpus.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpora) != len(pages) {
		t.Errorf("corpora = %d, pages = %d", len(corpora), len(pages))
	}
	// The released dataset is the expert-corrected one: every template is
	// syntactically valid.
	if rep := corpus.RunTests(corpora); !rep.Passed() {
		t.Errorf("released dataset fails completeness tests:\n%s", rep.Summary())
	}
}

func TestGenerateUnknownVendor(t *testing.T) {
	if err := generate("nope", 0.02, t.TempDir(), false); err == nil {
		t.Error("unknown vendor accepted")
	}
}
