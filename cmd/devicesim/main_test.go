package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"nassim"
)

// lockedBuffer synchronizes reads against the run goroutine's writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunServesUntilSignalled(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out lockedBuffer
	done := make(chan error, 1)
	go func() { done <- run("H3C", 0.02, "127.0.0.1:0", stop, &out) }()

	// Wait for the listen line, extract the address and talk to it.
	var addr string
	deadline := time.After(5 * time.Second)
	re := regexp.MustCompile(`listening on (\S+)`)
	for addr == "" {
		select {
		case <-deadline:
			t.Fatalf("server never announced its address; output: %q", out.String())
		default:
			if m := re.FindStringSubmatch(out.String()); m != nil {
				addr = m[1]
			} else {
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	cl, err := nassim.DialDevice(addr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Exec("return")
	if err != nil || !resp.OK {
		t.Fatalf("exec: %+v %v", resp, err)
	}
	cl.Close()

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	stop := make(chan os.Signal)
	var out bytes.Buffer
	if err := run("nope", 0.02, "127.0.0.1:0", stop, &out); err == nil {
		t.Error("unknown vendor accepted")
	}
	if err := run("H3C", 0.02, "256.0.0.1:99999", stop, &out); err == nil {
		t.Error("bad listen address accepted")
	}
}
