// Command devicesim serves a simulated network device over TCP: the
// substitute for the real devices the paper's Validator reaches over
// Telnet (§5.3). Connect with netcat or the nassim device client; the wire
// protocol is line-oriented (HELLO greeting, then one CLI line per
// request, OK / ERR / DATA responses).
//
// Usage:
//
//	devicesim -vendor Huawei -scale 0.05 -listen 127.0.0.1:7023
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"nassim"
)

func main() {
	vendor := flag.String("vendor", "Huawei", `vendor ("Huawei", "Cisco", "Nokia", "H3C")`)
	scale := flag.Float64("scale", 0.05, "device model scale (1.0 = paper scale)")
	listen := flag.String("listen", "127.0.0.1:7023", "listen address")
	flag.Parse()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(*vendor, *scale, *listen, sig, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "devicesim:", err)
		os.Exit(1)
	}
}

// run serves the device until a signal arrives on stop.
func run(vendor string, scale float64, listen string, stop <-chan os.Signal, out io.Writer) error {
	m, err := nassim.SyntheticModel(vendor, scale)
	if err != nil {
		return err
	}
	dev, err := nassim.NewDevice(m)
	if err != nil {
		return err
	}
	srv, err := nassim.ServeDevice(dev, listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "devicesim: %s device with %d commands / %d views listening on %s\n",
		vendor, len(m.Commands), len(m.Views), srv.Addr())
	fmt.Fprintf(out, "devicesim: readback command: %q; navigation: quit / return\n", dev.ShowConfigCommand())
	<-stop
	fmt.Fprintln(out, "devicesim: shutting down")
	return srv.Close()
}
