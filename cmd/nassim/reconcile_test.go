package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nassim"
)

// TestChaosProfileFlagRejectsUnknown pins the shared -chaos-profile
// contract: unknown names fail at flag-parse time (the flag.Value's Set
// method), before any fleet or pipeline work starts, and the error names
// the valid set.
func TestChaosProfileFlagRejectsUnknown(t *testing.T) {
	var f chaosProfileFlag
	err := f.Set("not-a-profile")
	if err == nil {
		t.Fatal("unknown profile name accepted")
	}
	if !strings.Contains(err.Error(), "not-a-profile") ||
		!strings.Contains(err.Error(), "churn") {
		t.Fatalf("rejection does not name the offender and the valid set: %v", err)
	}
	if f.name != "" {
		t.Fatalf("failed Set left state %q behind", f.name)
	}
	for _, name := range nassim.ChaosProfileNames() {
		if err := f.Set(name); err != nil {
			t.Errorf("valid profile %q rejected: %v", name, err)
		}
	}
	// Empty resets to the default (no chaos).
	if err := f.Set(""); err != nil || f.name != "" {
		t.Fatalf("empty Set: err=%v name=%q", err, f.name)
	}
}

// TestReconcileSubcommand drives cmdReconcile end to end: two cycles over
// a small drifting fleet, plan and manifest written to disk with the
// expected schemas.
func TestReconcileSubcommand(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.json")
	report := filepath.Join(dir, "manifest.json")
	err := cmdReconcile([]string{
		"-devices", "8", "-scale", "0.02", "-cycles", "2", "-seed", "99",
		"-chaos-profile", "churn+skew+flap",
		"-plan-out", plan, "-report", report,
	})
	if err != nil {
		t.Fatalf("reconcile: %v", err)
	}

	data, err := os.ReadFile(plan)
	if err != nil {
		t.Fatal(err)
	}
	var p nassim.ReconcilePlan
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("plan is not valid JSON: %v", err)
	}
	if p.Schema != nassim.ReconcilePlanSchema {
		t.Fatalf("plan schema = %q, want %q", p.Schema, nassim.ReconcilePlanSchema)
	}
	if p.Cycle != 2 || p.Devices != 8 || p.Scenario != "churn+skew+flap" {
		t.Fatalf("plan header: %+v", p)
	}

	m, err := nassim.LoadRunReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reconcile == nil {
		t.Fatal("manifest has no reconcile block")
	}
	if m.Reconcile.Devices != 8 || m.Reconcile.Cycles != 2 {
		t.Fatalf("reconcile block: %+v", m.Reconcile)
	}
	total := 0
	for _, n := range m.Reconcile.Health {
		total += n
	}
	if total != 8 {
		t.Fatalf("health states sum to %d devices, want 8: %v", total, m.Reconcile.Health)
	}
}
