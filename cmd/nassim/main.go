// Command nassim is the CLI front-end of the SNA assistant framework. Its
// subcommands mirror the paper's workflow:
//
//	nassim run      -vendors Huawei,Cisco,Nokia,H3C -workers 4 -scale 0.1
//	nassim parse    -vendor Huawei -pages ./manualdata/huawei/pages -out corpus.json
//	nassim validate -vendor Huawei -corpus corpus.json
//	nassim map      -vendor Huawei -corpus corpus.json -model IR+NetBERT -top 10 -limit 5
//	nassim demo     -vendor Huawei -scale 0.02
//
// run drives the staged pipeline engine over several vendors concurrently,
// with artifact caching and Ctrl-C cancellation at stage boundaries;
// parse runs the vendor manual parser plus the TDD completeness tests;
// validate runs formal syntax validation and hierarchy derivation and
// reports what the experts must review; map recommends UDM attributes for
// VDM parameters; demo runs the whole synthetic pipeline end to end.
//
// Global flags (before the subcommand) switch on the telemetry layer:
//
//	nassim --metrics-addr :8080            # serve /metrics, /debug/vars, /debug/traces, /debug/pprof/
//	nassim --log-level debug demo          # structured pipeline logging
//	nassim --trace-buffer 1024 demo        # record stage spans
//
// With --metrics-addr and no subcommand, nassim runs a small synthetic
// warm-up pipeline so every stage has samples, prints the bound address,
// and serves until interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"nassim"
	"nassim/internal/corpus"
)

func main() {
	g := flag.NewFlagSet("nassim", flag.ExitOnError)
	g.Usage = usage
	metricsAddr := g.String("metrics-addr", "", "serve telemetry HTTP endpoints on this address (\":0\" picks a port)")
	logFormat := g.String("log-format", "text", "log output format: text or json")
	logLevel := g.String("log-level", "", "enable structured logging at this level (debug, info, warn, error)")
	traceBuffer := g.Int("trace-buffer", 0, "record stage spans in a ring buffer of this capacity")
	g.Parse(os.Args[1:]) // stops at the first non-flag: the subcommand

	switch strings.ToLower(strings.TrimSpace(*logFormat)) {
	case "text", "json":
	default:
		fmt.Fprintf(os.Stderr, "nassim: unknown -log-format %q (use text or json)\n", *logFormat)
		os.Exit(2)
	}
	if *logLevel != "" {
		switch strings.ToLower(strings.TrimSpace(*logLevel)) {
		case "debug", "info", "warn", "warning", "error":
		default:
			fmt.Fprintf(os.Stderr, "nassim: unknown -log-level %q (use debug, info, warn, error)\n", *logLevel)
			os.Exit(2)
		}
		nassim.InitLogging(nassim.LogConfig{Format: *logFormat, Level: nassim.ParseLogLevel(*logLevel)})
	}
	if *traceBuffer > 0 {
		nassim.EnableTracing(*traceBuffer)
	}
	var srv *nassim.TelemetryServer
	if *metricsAddr != "" {
		var err error
		srv, err = nassim.ServeTelemetry(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nassim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving /metrics, /debug/vars, /debug/traces, /debug/pprof/ on http://%s\n", srv.Addr())
	}

	rest := g.Args()
	if len(rest) == 0 {
		if srv == nil {
			usage()
			os.Exit(2)
		}
		// Serve mode: warm the pipeline so every stage has samples, then
		// keep the endpoints up until interrupted.
		if err := warmup("Huawei", 0.02); err != nil {
			fmt.Fprintln(os.Stderr, "nassim: warm-up:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: pipeline warmed; metrics at http://%s/metrics (Ctrl-C to stop)\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		return
	}

	var err error
	switch rest[0] {
	case "run":
		err = cmdRun(rest[1:])
	case "reconcile":
		err = cmdReconcile(rest[1:])
	case "serve":
		err = cmdServe(rest[1:])
	case "client":
		err = cmdClient(rest[1:])
	case "parse":
		err = cmdParse(rest[1:])
	case "validate":
		err = cmdValidate(rest[1:])
	case "map":
		err = cmdMap(rest[1:])
	case "intent":
		err = cmdIntent(rest[1:])
	case "demo":
		err = cmdDemo(rest[1:])
	case "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nassim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `nassim — SDN assimilation assistant (NAssim, SIGCOMM'22 reproduction)

usage: nassim [global flags] <subcommand> [flags]

subcommands:
  run        drive the staged pipeline engine over several vendors concurrently
  reconcile  hold a simulated fleet to its assimilated desired state (drift
             detection, incremental re-validation, deterministic plans)
  serve      run nassimd, the long-lived assimilation daemon (singleflight
             dedup, bounded queue, per-tenant admission control, SSE progress)
  client     submit one request to a running nassimd and print the result
  parse     parse vendor manual pages into the vendor-independent corpus
  validate  formal syntax validation + hierarchy derivation over a corpus
  map       recommend UDM attributes for VDM parameters
  intent    push a UDM-level intent to a simulated device (controller demo)
  demo      run the full synthetic pipeline end to end

global flags (before the subcommand):
  -metrics-addr addr   serve /metrics, /debug/vars, /debug/traces, /debug/pprof/
                       (with no subcommand: warm the pipeline and serve until Ctrl-C)
  -log-level level     structured logging at debug|info|warn|error
  -log-format fmt      text (default) or json
  -trace-buffer n      record stage spans in a ring buffer of capacity n

run "nassim <subcommand> -h" for subcommand flags.
`)
}

// warmup drives one small synthetic assimilation end to end — parser,
// syntax validation, hierarchy derivation, empirical + live validation,
// mapper recommendation, controller intent — so the telemetry endpoints
// have samples from every pipeline stage in serve mode.
func warmup(vendor string, scale float64) error {
	ctx := context.Background()
	// Report:true records the warm-up's run manifest, so /debug/lastrun
	// serves content as soon as the endpoints come up.
	res, err := nassim.Assimilate(ctx, nassim.Options{
		Vendors: []string{vendor}, Scale: scale, Report: true})
	if err != nil {
		return err
	}
	asr := res.Results[0]
	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		return err
	}
	if files, ok := nassim.SyntheticConfigs(asr.Model, scale); ok {
		rep := nassim.ValidateConfigs(ctx, asr.VDM, files)
		exec := nassim.SessionExecutor(dev.NewSession())
		if _, err := nassim.TestUnusedCommands(ctx, asr.VDM, rep.UsedCorpora, exec,
			dev.ShowConfigCommand(), 1, 7); err != nil {
			return err
		}
	}
	u := nassim.BuildUDM()
	mp, err := nassim.NewMapper(u, nassim.ModelIRSBERT)
	if err != nil {
		return err
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 200, 17)
	pcs := make([]nassim.ParamContext, 0, min(3, len(anns)))
	for _, ann := range anns[:min(3, len(anns))] {
		pcs = append(pcs, nassim.ExtractContext(asr.VDM, ann.Param))
	}
	if _, err := mp.MapAll(ctx, pcs, 5); err != nil {
		return err
	}
	binding := nassim.BindingFromAnnotations(anns)
	ctrl := nassim.NewController(17)
	if err := nassim.RegisterDevice(ctrl, "warmup-device", vendor, asr.VDM, binding,
		nassim.SessionExecutor(dev.NewSession()), dev.ShowConfigCommand()); err != nil {
		return err
	}
	ids := make([]string, 0, len(binding))
	for id := range binding {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, err := ctrl.Apply("warmup-device", nassim.Intent{AttrID: id, Value: "7"}); err == nil {
			break
		}
	}
	return nil
}

// parseArtifact is the on-disk output of the parse subcommand: the corpus
// plus the explicit hierarchy edges some vendors publish.
type parseArtifact struct {
	Vendor    string
	Corpora   []nassim.Corpus
	Hierarchy []nassim.Edge
}

func loadArtifact(path string) (*parseArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art parseArtifact
	if err := json.Unmarshal(data, &art); err == nil && len(art.Corpora) > 0 {
		return &art, nil
	}
	// Fall back to a bare corpus array (the released-dataset format).
	corpora, err := corpus.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("%s is neither a parse artifact nor a corpus dataset: %w", path, err)
	}
	art = parseArtifact{Corpora: corpora}
	if len(corpora) > 0 {
		art.Vendor = corpora[0].Vendor
	}
	return &art, nil
}

func cmdParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	vendor := fs.String("vendor", "", "vendor of the manual")
	pagesDir := fs.String("pages", "", "directory of manual HTML pages")
	out := fs.String("out", "corpus.json", "output artifact path")
	fs.Parse(args)
	if *vendor == "" || *pagesDir == "" {
		return fmt.Errorf("parse: -vendor and -pages are required")
	}
	entries, err := os.ReadDir(*pagesDir)
	if err != nil {
		return err
	}
	var pages []nassim.Page
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".html") {
			continue
		}
		path := filepath.Join(*pagesDir, e.Name())
		html, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		pages = append(pages, nassim.Page{URL: "file://" + path, HTML: string(html)})
	}
	if len(pages) == 0 {
		return fmt.Errorf("parse: no .html pages in %s", *pagesDir)
	}
	res, err := nassim.ParseManual(context.Background(), *vendor, pages)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d pages\n%s", len(pages), res.Completeness.Summary())
	art := parseArtifact{Vendor: *vendor, Corpora: res.Corpora, Hierarchy: res.Hierarchy}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote parse artifact to %s\n", *out)
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	vendor := fs.String("vendor", "", "vendor (defaults to the artifact's)")
	corpusPath := fs.String("corpus", "corpus.json", "parse artifact or corpus dataset")
	showInvalid := fs.Int("show-invalid", 10, "how many invalid CLIs to print")
	save := fs.String("save", "", "write the validated VDM (derived hierarchy included) to this file")
	fs.Parse(args)
	art, err := loadArtifact(*corpusPath)
	if err != nil {
		return err
	}
	v := *vendor
	if v == "" {
		v = art.Vendor
	}
	model, rep := nassim.BuildVDM(context.Background(), v, art.Corpora, art.Hierarchy)
	fmt.Println(model.Summary())
	fmt.Println("derivation:", rep)
	if n := len(model.InvalidCLIs); n > 0 {
		fmt.Printf("formal syntax validation flagged %d CLI templates for expert review:\n", n)
		max := n
		if max > *showInvalid {
			max = *showInvalid
		}
		for _, ic := range model.InvalidCLIs[:max] {
			fmt.Println("  -", ic)
			if ic.Err != nil {
				for _, s := range ic.Err.Suggestions {
					fmt.Println("      candidate fix:", s)
				}
			}
		}
		if n > max {
			fmt.Printf("  ... and %d more\n", n-max)
		}
	}
	if amb := model.AmbiguousViews(); len(amb) > 0 {
		fmt.Printf("ambiguous views (recorded with relevant snippets for review): %v\n", amb)
	}
	if issues := nassim.ValidateHierarchy(model); len(issues) > 0 {
		fmt.Printf("hierarchy consistency issues: %d\n", len(issues))
		for i, is := range issues {
			if i >= 10 {
				fmt.Printf("  ... and %d more\n", len(issues)-10)
				break
			}
			fmt.Println("  -", is)
		}
	} else {
		fmt.Println("hierarchy consistency: OK")
	}
	if *save != "" {
		data, err := nassim.MarshalVDM(model)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote validated VDM to %s\n", *save)
	}
	return nil
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	vendor := fs.String("vendor", "", "vendor (defaults to the artifact's)")
	corpusPath := fs.String("corpus", "corpus.json", "parse artifact or corpus dataset")
	model := fs.String("model", "IR+SBERT", "mapper model (IR, SimCSE, SBERT, NetBERT, IR+SimCSE, IR+SBERT, IR+NetBERT)")
	top := fs.Int("top", 10, "recommendations per parameter")
	limit := fs.Int("limit", 5, "how many parameters to map (0 = all)")
	param := fs.String("param", "", `map one specific parameter ("<corpusIndex>#<name>")`)
	vdmPath := fs.String("vdm", "", "load a saved validated VDM instead of re-deriving from -corpus")
	matrixCache := fs.String("matrix-cache", "", "precombined-matrix artifact path (schema "+nassim.MapperMatrixSchema+"): read when present, written after a cold build")
	fs.Parse(args)
	var vdmModel *nassim.VDM
	if *vdmPath != "" {
		data, err := os.ReadFile(*vdmPath)
		if err != nil {
			return err
		}
		vdmModel, err = nassim.UnmarshalVDM(data)
		if err != nil {
			return err
		}
	} else {
		art, err := loadArtifact(*corpusPath)
		if err != nil {
			return err
		}
		v := *vendor
		if v == "" {
			v = art.Vendor
		}
		vdmModel, _ = nassim.BuildVDM(context.Background(), v, art.Corpora, art.Hierarchy)
	}
	u := nassim.BuildUDM()
	var mopts []nassim.MapperOption
	if *matrixCache != "" {
		if data, err := os.ReadFile(*matrixCache); err == nil {
			mopts = append(mopts, nassim.WithMatrixArtifact(data))
		}
	}
	mp, err := nassim.NewMapper(u, nassim.ModelKind(*model), mopts...)
	if err != nil {
		return err
	}
	if *matrixCache != "" {
		if mp.MatrixLoaded() {
			fmt.Fprintf(os.Stderr, "mapper matrix: warm start from %s\n", *matrixCache)
		} else if data, err := mp.ExportMatrix(); err == nil {
			if err := os.WriteFile(*matrixCache, data, 0o644); err != nil {
				return fmt.Errorf("map: write matrix cache: %w", err)
			}
			fmt.Fprintf(os.Stderr, "mapper matrix: cached %d bytes to %s\n", len(data), *matrixCache)
		}
	}
	params := vdmModel.Parameters()
	if *param != "" {
		var idx int
		var name string
		if _, err := fmt.Sscanf(*param, "%d#%s", &idx, &name); err != nil {
			return fmt.Errorf("map: bad -param %q (want <corpusIndex>#<name>)", *param)
		}
		params = []nassim.Parameter{{Corpus: idx, Name: name}}
	} else if *limit > 0 && len(params) > *limit {
		params = params[:*limit]
	}
	for _, p := range params {
		ctx := nassim.ExtractContext(vdmModel, p)
		fmt.Print(nassim.Explain(ctx, mp.Recommend(ctx, *top)))
	}
	return nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	vendor := fs.String("vendor", "Huawei", "vendor to assimilate")
	scale := fs.Float64("scale", 0.02, "model scale (1.0 = paper scale)")
	fs.Parse(args)

	fmt.Printf("=== SNA demo: assimilating a synthetic %s device (scale %.2f) ===\n", *vendor, *scale)
	ctx := context.Background()
	asr, err := nassim.AssimilateVendor(ctx, *vendor, *scale)
	if err != nil {
		return err
	}
	fmt.Printf("manual pages parsed: %d (completeness tests: passed=%v)\n",
		len(asr.Parsed.Corpora), asr.Parsed.Completeness.Passed())
	fmt.Printf("invalid CLI templates caught and expert-corrected: %d\n", asr.PreCorrectionInvalid)
	fmt.Println(asr.VDM.Summary())

	if files, ok := nassim.SyntheticConfigs(asr.Model, *scale); ok {
		rep := nassim.ValidateConfigs(ctx, asr.VDM, files)
		fmt.Println("empirical validation:", rep)
	}

	u := nassim.BuildUDM()
	mp, err := nassim.NewMapper(u, nassim.ModelIRSBERT)
	if err != nil {
		return err
	}
	anns := nassim.GroundTruthAnnotations(asr.Model, 5, 1)
	sort.Slice(anns, func(a, b int) bool { return anns[a].AttrID < anns[b].AttrID })
	fmt.Println("\nsample VDM->UDM recommendations (IR+SBERT):")
	for _, ann := range anns {
		pc := nassim.ExtractContext(asr.VDM, ann.Param)
		fmt.Print(nassim.Explain(pc, mp.Recommend(pc, 3)))
		fmt.Printf("  (ground truth: %s)\n", ann.AttrID)
	}
	return nil
}

// cmdIntent demonstrates the controller: spin up a simulated device for
// the vendor, build the confirmed binding (ground truth plays the
// expert-reviewed mapping), and push one UDM-level intent.
func cmdIntent(args []string) error {
	fs := flag.NewFlagSet("intent", flag.ExitOnError)
	vendor := fs.String("vendor", "Huawei", "vendor of the target device")
	scale := fs.Float64("scale", 0.05, "device model scale")
	attr := fs.String("attr", "", "UDM attribute ID (empty: pick a bound one)")
	value := fs.String("value", "7", "value to configure")
	fs.Parse(args)

	asr, err := nassim.AssimilateVendor(context.Background(), *vendor, *scale)
	if err != nil {
		return err
	}
	binding := nassim.BindingFromAnnotations(
		nassim.GroundTruthAnnotations(asr.Model, 200, 17))
	dev, err := nassim.NewDevice(asr.Model)
	if err != nil {
		return err
	}
	srv, err := nassim.ServeDevice(dev, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	client, err := nassim.DialDevice(srv.Addr())
	if err != nil {
		return err
	}
	defer client.Close()

	ctrl := nassim.NewController(17)
	if err := nassim.RegisterDevice(ctrl, "device-1", *vendor, asr.VDM, binding,
		client, dev.ShowConfigCommand()); err != nil {
		return err
	}
	attrID := *attr
	if attrID == "" {
		ids := make([]string, 0, len(binding))
		for id := range binding {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if strings.HasSuffix(id, "-time") || strings.HasSuffix(id, "-limit") {
				attrID = id
				break
			}
		}
		if attrID == "" && len(ids) > 0 {
			attrID = ids[0]
		}
	}
	fmt.Printf("intent: set %s = %s on device-1 (%s at %s)\n", attrID, *value, *vendor, srv.Addr())
	res, err := ctrl.Apply("device-1", nassim.Intent{AttrID: attrID, Value: *value})
	if err != nil {
		return err
	}
	for _, line := range res.Chain {
		fmt.Printf("  > %s\n", line)
	}
	fmt.Printf("  > %s\n", res.CLI)
	fmt.Printf("verified via %q: %v\n", dev.ShowConfigCommand(), res.Verified)
	return nil
}

// cmdRun drives the staged pipeline engine: assimilate
// several vendors concurrently with content-hash artifact caching. Ctrl-C
// cancels the run at the next stage boundary. -repeat 2 demonstrates the
// warm-cache path: the second round reports every stage as skipped.
// chaosProfileFlag is the -chaos-profile flag value shared by run and
// reconcile: a named scenario from the chaos library, validated at
// flag-parse time so unknown names are rejected before any work starts.
type chaosProfileFlag struct{ name string }

func (f *chaosProfileFlag) String() string { return f.name }

func (f *chaosProfileFlag) Set(v string) error {
	v = strings.TrimSpace(v)
	if v == "" {
		f.name = ""
		return nil
	}
	if _, err := nassim.FleetScenarioByName(v); err != nil {
		return err
	}
	f.name = v
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	vendors := fs.String("vendors", strings.Join(nassim.Vendors(), ","), "comma-separated vendors to assimilate")
	scale := fs.Float64("scale", 0.1, "model scale (1.0 = paper scale)")
	workers := fs.Int("workers", 4, "vendors assimilated concurrently")
	cacheDir := fs.String("cache-dir", "", "on-disk artifact cache directory (warm-starts later processes)")
	validate := fs.Bool("validate", true, "run empirical configuration validation (Figure 8)")
	live := fs.Bool("live", false, "live-test unused commands on an in-process simulated device")
	chaos := fs.Bool("chaos", false, "serve live-test devices over TCP behind the standard fault-injection profile (implies -live)")
	var chaosProfile chaosProfileFlag
	fs.Var(&chaosProfile, "chaos-profile", "serve live-test devices behind this named chaos profile (one of "+
		strings.Join(nassim.ChaosProfileNames(), ", ")+"; implies -live)")
	repeat := fs.Int("repeat", 1, "run the pipeline this many times (>1 exercises the artifact cache)")
	seed := fs.Uint64("seed", 7, "live-test instantiation seed (also drives chaos fault schedules)")
	timeout := fs.Duration("timeout", 0, "cancel the run after this long (0 = no deadline)")
	report := fs.String("report", "", "write the per-run manifest (schema "+nassim.RunReportSchema+") to this file (\"-\" prints it)")
	traceOut := fs.String("trace-out", "", "export recorded spans as a Chrome trace-event file after the run (enables tracing if off)")
	profileStages := fs.String("profile-stages", "", "flight recorder: write per-stage pprof CPU+heap captures to this directory (forces -workers 1)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var names []string
	for _, v := range strings.Split(*vendors, ",") {
		if v = strings.TrimSpace(v); v != "" {
			names = append(names, v)
		}
	}
	if *profileStages != "" && *workers != 1 {
		fmt.Println("profile-stages: forcing -workers 1 (CPU profiling is process-global; overlapping stages would misattribute samples)")
		*workers = 1
	}
	if *traceOut != "" && nassim.TraceSnapshot() == nil {
		nassim.EnableTracing(4096)
	}
	timer := nassim.NewStageTimer()
	opts := nassim.Options{
		Vendors: names, Scale: *scale, Workers: *workers,
		Cache: nassim.NewPipelineCache(), CacheDir: *cacheDir,
		Validate: *validate, LiveTest: *live || *chaos || chaosProfile.name != "", Seed: *seed, Timer: timer,
		// Profiling runs get a manifest too: its Timing.Derived block carries
		// the pool utilizations, sharing one code path with BENCH_frontend.json.
		Report: *report != "" || *profileStages != "", ProfileStages: *profileStages,
	}
	if chaosProfile.name != "" {
		p, err := nassim.ChaosProfileByName(chaosProfile.name, *seed)
		if err != nil {
			return err // unreachable: Set validated the name at parse time
		}
		opts.Chaos = &p
	} else if *chaos {
		p := nassim.StandardChaosProfile(*seed)
		opts.Chaos = &p
	}
	var manifest *nassim.RunReport
	var profiles []string
	for round := 1; round <= *repeat; round++ {
		start := time.Now()
		res, err := nassim.Assimilate(ctx, opts)
		if err != nil {
			return err
		}
		if res.Report != nil {
			manifest = res.Report // keep the last (warmest) round's manifest
		}
		profiles = append(profiles, res.Profiles...)
		fmt.Printf("round %d (%v): %s\n", round, time.Since(start).Round(time.Millisecond), res.Stats)
		for _, asr := range res.Results {
			if asr == nil {
				continue
			}
			line := fmt.Sprintf("  %-8s commands=%d views=%d invalid=%d corrected=%d",
				asr.VDM.Vendor, len(asr.VDM.Corpora), len(asr.VDM.Views),
				asr.PreCorrectionInvalid, asr.CorrectionsApplied)
			if asr.Empirical != nil {
				line += fmt.Sprintf(" config_match=%.1f%%", 100*asr.Empirical.MatchingRatio())
			}
			if asr.Live != nil {
				line += fmt.Sprintf(" live_verified=%d/%d", asr.Live.Verified, asr.Live.Tested)
			}
			if asr.Degraded() {
				for st, reason := range asr.DegradedStages {
					line += fmt.Sprintf(" DEGRADED[%s=%s]", st, reason)
				}
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("stage timing (executed stages only):\n%s", timer.Table())
	if manifest != nil && len(manifest.Timing.Derived) > 0 {
		keys := make([]string, 0, len(manifest.Timing.Derived))
		for k := range manifest.Timing.Derived {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("derived (same code path as BENCH_frontend.json):")
		for _, k := range keys {
			fmt.Printf("  %s = %.3f\n", k, manifest.Timing.Derived[k])
		}
	}
	if manifest != nil {
		fmt.Println("manifest:", manifest.Summary())
		if *report == "-" {
			data, err := manifest.MarshalIndent()
			if err != nil {
				return err
			}
			os.Stdout.Write(data)
		} else if *report != "" {
			if err := manifest.WriteFile(*report); err != nil {
				return err
			}
			fmt.Printf("wrote run manifest to %s\n", *report)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := nassim.ExportChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (load in chrome://tracing or Perfetto)\n", *traceOut)
	}
	if len(profiles) > 0 {
		fmt.Printf("flight recorder: %d pprof capture(s) in %s\n", len(profiles), *profileStages)
	}
	return nil
}

func cmdReconcile(args []string) error {
	fs := flag.NewFlagSet("reconcile", flag.ExitOnError)
	devices := fs.Int("devices", 32, "fleet size (simulated devices)")
	vendors := fs.String("vendors", "", "comma-separated fleet vendors (default: all four)")
	scale := fs.Float64("scale", 0.05, "model scale for the desired-state derivation")
	cycles := fs.Int("cycles", 2, "reconcile cycles to run (0 = run continuously until interrupted)")
	interval := fs.Duration("interval", time.Second, "cycle pacing in continuous mode")
	maxParallel := fs.Int("max-parallel", 8, "concurrent device probes (plans are identical for any value)")
	var chaosProfile chaosProfileFlag
	fs.Var(&chaosProfile, "chaos-profile", "fleet chaos scenario (one of "+
		strings.Join(nassim.ChaosProfileNames(), ", ")+"; default: clean fleet)")
	seed := fs.Uint64("seed", 7, "fleet seed: chaos schedules, desired state, and planted drift")
	budget := fs.Int("failure-budget", 0, "unreachable devices tolerated per cycle before the plan defers (0 = devices/8, negative = unlimited)")
	workers := fs.Int("workers", 0, "revalidation pipeline workers (0 = engine default)")
	planOut := fs.String("plan-out", "", "write the final cycle's plan ("+nassim.ReconcilePlanSchema+") to this file (\"-\" prints it)")
	report := fs.String("report", "", "write the run manifest (schema "+nassim.RunReportSchema+") to this file (\"-\" prints it)")
	timeout := fs.Duration("timeout", 0, "cancel the run after this long (0 = no deadline)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := nassim.ReconcilerConfig{
		Spec: nassim.FleetSpec{
			Devices: *devices, Scale: *scale, Seed: *seed,
		},
		Interval: *interval, MaxParallel: *maxParallel,
		FailureBudget: *budget, Workers: *workers,
	}
	for _, v := range strings.Split(*vendors, ",") {
		if v = strings.TrimSpace(v); v != "" {
			cfg.Spec.Vendors = append(cfg.Spec.Vendors, v)
		}
	}
	if chaosProfile.name != "" {
		sc, err := nassim.FleetScenarioByName(chaosProfile.name)
		if err != nil {
			return err // unreachable: Set validated the name at parse time
		}
		cfg.Spec.Scenario = sc
	}

	var last *nassim.ReconcileCycle
	ran, invalidated := 0, 0
	show := func(cr *nassim.ReconcileCycle) {
		last = cr
		ran++
		invalidated += cr.Invalidated
		fmt.Printf("cycle %d (%v): converged=%d drifted=%d degraded=%d unreachable=%d"+
			" actions=%d cache_hit=%.0f%% probe_p50=%v p99=%v",
			cr.Cycle, cr.Wall.Round(time.Millisecond),
			cr.Health[nassim.FleetConverged], cr.Health[nassim.FleetDrifted],
			cr.Health[nassim.FleetDegraded], cr.Health[nassim.FleetUnreachable],
			len(cr.Plan.Actions), 100*cr.CacheHitRatio(),
			cr.ProbeP50.Round(time.Millisecond), cr.ProbeP99.Round(time.Millisecond))
		if cr.Invalidated > 0 {
			fmt.Printf(" invalidated=%d", cr.Invalidated)
		}
		if cr.Plan.Deferred {
			fmt.Print(" PLAN-DEFERRED")
		}
		fmt.Println()
	}
	if *cycles <= 0 {
		cfg.OnCycle = show
	}

	recorder := nassim.NewReconcileRecorder()
	r, err := nassim.NewFleetReconciler(ctx, cfg)
	if err != nil {
		return err
	}
	defer r.Close()

	if *cycles <= 0 {
		if err := r.Run(ctx); err != nil && err != context.Canceled {
			return err
		}
	} else {
		for c := 0; c < *cycles; c++ {
			cr, err := r.RunCycle(ctx)
			if err != nil {
				return err
			}
			show(cr)
		}
	}
	if last == nil {
		return fmt.Errorf("reconcile: no cycle completed")
	}

	if *planOut != "" {
		data, err := last.Plan.Encode()
		if err != nil {
			return err
		}
		if *planOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			return err
		} else {
			fmt.Printf("wrote plan to %s\n", *planOut)
		}
	}
	if *report != "" {
		manifest := recorder.Build(cfg, last, ran, invalidated)
		fmt.Println("manifest:", manifest.Summary())
		if *report == "-" {
			data, err := manifest.MarshalIndent()
			if err != nil {
				return err
			}
			os.Stdout.Write(data)
		} else if err := manifest.WriteFile(*report); err != nil {
			return err
		} else {
			fmt.Printf("wrote run manifest to %s\n", *report)
		}
	}
	return nil
}
