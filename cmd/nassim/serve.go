package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nassim/internal/serve"
	"nassim/internal/telemetry"
)

// cmdServe runs nassimd: the long-lived assimilation daemon. One
// process serves the JSON API (singleflight dedup, bounded queue,
// per-tenant admission control, SSE progress) plus the full telemetry
// surface, sharing a single artifact cache across every request.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address (\":0\" picks a port)")
	workers := fs.Int("serve-workers", 2, "job worker pool size")
	queueDepth := fs.Int("queue-depth", 16, "job queue depth behind the worker pool")
	pipelineWorkers := fs.Int("workers", 2, "per-request pipeline vendor parallelism")
	ratePerSec := fs.Float64("rate-per-sec", 0, "per-tenant request rate limit (0 = unlimited)")
	burst := fs.Int("burst", 4, "per-tenant rate-limit burst")
	maxInflight := fs.Int("max-inflight", 0, "per-tenant in-flight job quota (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint for shed requests")
	cacheDir := fs.String("cache-dir", "", "mirror expensive artifacts on disk under this directory")
	fs.Parse(args)

	s, err := serve.NewServer(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		RatePerSec:  *ratePerSec,
		Burst:       *burst,
		MaxInflight: *maxInflight,
		RetryAfter:  *retryAfter,
		Runner: serve.NewRunner(serve.RunnerConfig{
			Workers:  *pipelineWorkers,
			CacheDir: *cacheDir,
		}),
	})
	if err != nil {
		return err
	}

	// One mux, two surfaces: the serving API plus the standard telemetry
	// endpoints (/metrics, /debug/vars, /debug/traces, /debug/pprof/).
	mux := http.NewServeMux()
	api := serve.Handler(s)
	mux.Handle("/v1/", api)
	mux.Handle("/healthz", api)
	tmux := telemetry.NewMux()
	mux.Handle("/metrics", tmux)
	mux.Handle("/debug/", tmux)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(l) }()
	fmt.Printf("nassimd: serving /v1/assimilate on http://%s (workers %d, queue %d; Ctrl-C to drain)\n",
		l.Addr(), *workers, *queueDepth)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case <-sigCh:
	}

	// Graceful drain: stop admitting (new submits see 503), let queued
	// and running jobs finish, then close the HTTP listener.
	fmt.Println("nassimd: draining (in-flight jobs finish, new requests get 503)")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("nassimd: drained — %d requests, %d executions, dedup hit ratio %.2f, %d shed\n",
		st.Requests, st.Executions, st.DedupHitRatio(), st.Shed)
	return httpSrv.Shutdown(ctx)
}

// cmdClient is the thin client: build a request from flags, POST it to
// a running nassimd, surface the dedup provenance headers, and print or
// save the result.
func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "nassimd address (host:port)")
	vendors := fs.String("vendors", "", "comma-separated vendor list (empty = all built-in vendors)")
	scale := fs.Float64("scale", 0.1, "synthetic corpus scale")
	validate := fs.Bool("validate", false, "run empirical configuration validation")
	live := fs.Bool("live", false, "run live-device testing")
	seed := fs.Uint64("seed", 0, "live-test instantiation seed")
	tenant := fs.String("tenant", "", "tenant identity for admission control")
	stream := fs.Bool("stream", false, "stream per-stage progress events (SSE)")
	out := fs.String("out", "", "write the result document to this file instead of stdout")
	timeout := fs.Duration("timeout", 10*time.Minute, "request timeout")
	fs.Parse(args)

	req := serve.Request{
		Scale:    *scale,
		Validate: *validate,
		LiveTest: *live,
		Seed:     *seed,
		Tenant:   *tenant,
	}
	if *vendors != "" {
		for _, v := range strings.Split(*vendors, ",") {
			if v = strings.TrimSpace(v); v != "" {
				req.Vendors = append(req.Vendors, v)
			}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	url := fmt.Sprintf("http://%s/v1/assimilate", *addr)
	if *stream {
		url += "?stream=1"
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return fmt.Errorf("client: %s (retry after %ss): %s", resp.Status, ra, strings.TrimSpace(string(msg)))
		}
		return fmt.Errorf("client: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	fmt.Fprintf(os.Stderr, "client: key %s dedup %s\n",
		resp.Header.Get(serve.HeaderKey), resp.Header.Get(serve.HeaderDedup))

	if *stream {
		return streamEvents(resp.Body, *out)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return writeResult(data, *out)
}

// streamEvents relays SSE progress lines to stderr and captures the
// final result event's document.
func streamEvents(r io.Reader, out string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "result":
				return writeResult([]byte(data+"\n"), out)
			case "error":
				return fmt.Errorf("client: server error: %s", data)
			default:
				fmt.Fprintf(os.Stderr, "client: %s %s\n", event, data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("client: stream ended without a result event")
}

func writeResult(data []byte, out string) error {
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "client: wrote %d bytes to %s\n", len(data), out)
	return nil
}
