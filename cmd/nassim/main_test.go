package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nassim"
	"nassim/internal/corpus"
)

// writePages renders a small synthetic manual into a temp directory.
func writePages(t *testing.T, vendor string) (dir string, model *nassim.DeviceModel) {
	t.Helper()
	m, err := nassim.SyntheticModel(vendor, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	for i, p := range nassim.SyntheticManual(m) {
		name := filepath.Join(dir, fmt.Sprintf("cmd-%05d.html", i))
		if err := os.WriteFile(name, []byte(p.HTML), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, m
}

func TestParseValidateMapSubcommands(t *testing.T) {
	pages, _ := writePages(t, "H3C")
	out := filepath.Join(t.TempDir(), "corpus.json")

	if err := cmdParse([]string{"-vendor", "H3C", "-pages", pages, "-out", out}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	art, err := loadArtifact(out)
	if err != nil {
		t.Fatal(err)
	}
	if art.Vendor != "H3C" || len(art.Corpora) == 0 {
		t.Fatalf("artifact: vendor=%q corpora=%d", art.Vendor, len(art.Corpora))
	}

	if err := cmdValidate([]string{"-corpus", out}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := cmdMap([]string{"-corpus", out, "-model", "IR", "-limit", "2", "-top", "3"}); err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := cmdMap([]string{"-corpus", out, "-model", "IR", "-param", "0#description-text"}); err != nil {
		t.Fatalf("map -param: %v", err)
	}
}

func TestParseSubcommandErrors(t *testing.T) {
	if err := cmdParse([]string{"-vendor", "H3C"}); err == nil {
		t.Error("missing -pages accepted")
	}
	empty := t.TempDir()
	if err := cmdParse([]string{"-vendor", "H3C", "-pages", empty}); err == nil {
		t.Error("empty pages dir accepted")
	}
	if err := cmdParse([]string{"-vendor", "nope", "-pages", empty}); err == nil {
		t.Error("unknown vendor accepted")
	}
}

func TestMapSubcommandErrors(t *testing.T) {
	pages, _ := writePages(t, "H3C")
	out := filepath.Join(t.TempDir(), "corpus.json")
	if err := cmdParse([]string{"-vendor", "H3C", "-pages", pages, "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMap([]string{"-corpus", out, "-model", "bogus"}); err == nil {
		t.Error("bogus model accepted")
	}
	if err := cmdMap([]string{"-corpus", out, "-param", "not-a-ref"}); err == nil {
		t.Error("malformed -param accepted")
	}
	if err := cmdMap([]string{"-corpus", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing corpus file accepted")
	}
}

func TestLoadArtifactBareDatasetFallback(t *testing.T) {
	// The released-dataset format is a bare corpus array; loadArtifact must
	// accept it too.
	corpora := []corpus.Corpus{{
		CLIs: []string{"vlan <vlan-id>"}, FuncDef: "Creates a VLAN.",
		ParentViews: []string{"system view"},
		ParaDef:     []corpus.ParaDef{{Paras: "vlan-id", Info: "VLAN ID."}},
		Vendor:      "Huawei",
	}}
	data, err := corpus.Marshal(corpora)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dataset.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := loadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Vendor != "Huawei" || len(art.Corpora) != 1 {
		t.Fatalf("artifact: %+v", art)
	}
}

func TestLoadArtifactRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifact(path); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON of the wrong shape.
	obj, _ := json.Marshal(map[string]int{"x": 1})
	if err := os.WriteFile(path, obj, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifact(path); err == nil {
		t.Error("wrong-shape JSON accepted")
	}
}

func TestDemoSubcommand(t *testing.T) {
	if err := cmdDemo([]string{"-vendor", "Cisco", "-scale", "0.02"}); err != nil {
		t.Fatalf("demo: %v", err)
	}
}

func TestValidateSaveAndMapFromVDM(t *testing.T) {
	pages, _ := writePages(t, "H3C")
	dir := t.TempDir()
	out := filepath.Join(dir, "corpus.json")
	vdmPath := filepath.Join(dir, "vdm.json")
	if err := cmdParse([]string{"-vendor", "H3C", "-pages", pages, "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdValidate([]string{"-corpus", out, "-save", vdmPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(vdmPath); err != nil {
		t.Fatalf("saved VDM missing: %v", err)
	}
	if err := cmdMap([]string{"-vdm", vdmPath, "-model", "IR", "-limit", "2"}); err != nil {
		t.Fatalf("map from saved VDM: %v", err)
	}
	if err := cmdMap([]string{"-vdm", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing VDM file accepted")
	}
}

func TestIntentSubcommand(t *testing.T) {
	if err := cmdIntent([]string{"-vendor", "Huawei", "-scale", "0.05", "-value", "9"}); err != nil {
		t.Fatalf("intent: %v", err)
	}
}
