package nassim

import (
	"fmt"
	"sort"
)

// FeedbackLoop implements §3.2's continuous improvement: "We also collect
// the expert-corrected mapping results, and we use them as labelled
// training/testing sets to continuously improve Mapper's NLP models, which
// benefits future VDM-UDM mapping procedures."
//
// The loop presents recommendations for review; the engineer either
// confirms one (possibly the top-1) or supplies the correct attribute when
// every recommendation is wrong. Confirmed pairs accumulate as annotations
// and Retrain fine-tunes the NetBERT encoder on everything collected so
// far (plus any seed annotations from previously assimilated vendors).
type FeedbackLoop struct {
	mapper *Mapper
	vdm    *VDM
	udm    *UDM

	// seed carries training pairs from previously assimilated vendors
	// (built against their own VDMs via BuildTrainingPairs).
	seed      []TrainExample
	confirmed []Annotation

	negRatio int
	epochs   int
	rngSeed  uint64
}

// NewFeedbackLoop starts a review loop over one vendor's VDM. seed carries
// training pairs from previously assimilated vendors (may be nil). The
// mapper should be a NetBERT kind for Retrain to work; other kinds can
// still collect confirmations.
func NewFeedbackLoop(m *Mapper, v *VDM, u *UDM, seed []TrainExample, negRatio, epochs int, rngSeed uint64) *FeedbackLoop {
	if negRatio <= 0 {
		negRatio = 10
	}
	if epochs <= 0 {
		epochs = 1
	}
	return &FeedbackLoop{
		mapper: m, vdm: v, udm: u,
		seed:     append([]TrainExample(nil), seed...),
		negRatio: negRatio, epochs: epochs, rngSeed: rngSeed,
	}
}

// Review returns the current top-k recommendations for a parameter — the
// list the engineer inspects.
func (f *FeedbackLoop) Review(p Parameter, k int) []Recommendation {
	return f.mapper.Recommend(ExtractContext(f.vdm, p), k)
}

// Confirm records the engineer's decision: the parameter maps to the UDM
// attribute with the given ID (either a recommendation they accepted or a
// correction they looked up). Unknown attribute IDs are rejected.
func (f *FeedbackLoop) Confirm(p Parameter, attrID string) error {
	if f.udm.IndexOf(attrID) < 0 {
		return fmt.Errorf("nassim: unknown UDM attribute %q", attrID)
	}
	f.confirmed = append(f.confirmed, Annotation{Param: p, AttrID: attrID})
	return nil
}

// Confirmed returns the annotations collected so far (sorted by attribute
// for determinism).
func (f *FeedbackLoop) Confirmed() []Annotation {
	out := append([]Annotation(nil), f.confirmed...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].AttrID != out[b].AttrID {
			return out[a].AttrID < out[b].AttrID
		}
		return out[a].Param.Corpus < out[b].Param.Corpus
	})
	return out
}

// Retrain fine-tunes the mapper on the seed pairs plus everything
// confirmed so far and refreshes its UDM embeddings. It fails for mappers
// without a fine-tunable encoder.
func (f *FeedbackLoop) Retrain() (FineTuneStats, error) {
	examples := append([]TrainExample(nil), f.seed...)
	examples = append(examples, BuildTrainingPairs(f.vdm, f.udm, f.confirmed)...)
	if len(examples) == 0 {
		return FineTuneStats{}, fmt.Errorf("nassim: nothing to retrain on")
	}
	return f.mapper.FineTuneExamples(examples, f.negRatio, f.epochs, f.rngSeed)
}
