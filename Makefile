# Developer entry points. `make check` is the gate every change must pass:
# formatting (gofmt -l fails on any unformatted file), vet, build, and the
# full test suite under the race detector.

GO ?= go

.PHONY: check fmt vet build test race bench bench-pipeline bench-mapper bench-frontend bench-reconcile bench-serve bench-all benchdiff chaos reconcile serve stages fuzz

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Engine benchmark: four vendors through the 4-worker pipeline, exported
# to BENCH_pipeline.json (schema nassim-pipeline-bench/v1).
bench-pipeline:
	NASSIM_BENCH_OUT=BENCH_pipeline.json $(GO) test -run xxx -bench BenchmarkAssimilateParallel -benchtime 1x .

# Mapper hot-path benchmarks (vectorized Recommend, parallel MapAll,
# inverted-index TF-IDF Rank), exported to BENCH_mapper.json (schema
# nassim-mapper-bench/v1).
bench-mapper:
	NASSIM_MAPPER_BENCH_OUT=BENCH_mapper.json $(GO) test -run xxx \
		-bench 'BenchmarkRecommend$$|BenchmarkMapAll$$|BenchmarkTFIDFRank$$' -benchtime 200x .

# Front-end benchmarks (byte-tokenizer parse pool, compiled-template
# cache, memoized empirical matching at paper corpus scale, isolated
# artifact decode), exported to BENCH_frontend.json (schema
# nassim-frontend-bench/v1) with derived seed-vs-optimized speedups,
# pool utilizations, and decode_ns_per_artifact.
bench-frontend:
	NASSIM_FRONTEND_BENCH_OUT=BENCH_frontend.json $(GO) test -run xxx \
		-bench 'BenchmarkParseAll|BenchmarkCompileTemplates|BenchmarkValidateConfigs|BenchmarkDecodeArtifact' -benchtime 5x .

# Artifact-codec fuzzing under the race detector: coverage-guided
# mutations of real encoded artifacts must decode cleanly or be rejected
# with an error — never panic — at the stage-codec layer
# (FuzzArtifactCodecs) and the container layer (FuzzOpen). The seed
# corpora also run in every plain `go test`.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -race -run '^$$' -fuzz FuzzArtifactCodecs -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -race -run '^$$' -fuzz FuzzOpen -fuzztime $(FUZZTIME) ./internal/artifact

# Chaos suite: fault injection, resilient client, breaker, and the
# end-to-end chaos assimilation tests, twice under the race detector, then
# the resilient-exec benchmark exported to BENCH_chaos.json (schema
# nassim-chaos-bench/v1: exec p50/p99 latency, retry counts, faults
# delivered).
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Resilient|Breaker|Faultnet|Retry|Degrad' ./...
	NASSIM_CHAOS_BENCH_OUT=BENCH_chaos.json $(GO) test -run '^$$' \
		-bench BenchmarkChaosExec -benchtime 2s .

# Reconciler suite: the fleet reconciler's drift, scenario, leak, and
# settled-dead tests under the race detector (including the 500-device
# acceptance run), then the fleet benchmark exported to
# BENCH_reconcile.json (schema nassim-reconcile-bench/v1: cycle and probe
# latencies, probe throughput, cache-hit ratio, fleet health).
reconcile:
	$(GO) test -race -run 'Reconcile|Fleet|Scenario|Drift|Dead|Settle' ./internal/reconciler ./internal/device .
	NASSIM_RECONCILE_BENCH_OUT=BENCH_reconcile.json $(GO) test -run '^$$' \
		-bench BenchmarkReconcileFleet -benchtime 5x .

bench-reconcile:
	NASSIM_RECONCILE_BENCH_OUT=BENCH_reconcile.json $(GO) test -run '^$$' \
		-bench BenchmarkReconcileFleet -benchtime 5x .

# Run nassimd, the long-lived assimilation daemon (Ctrl-C drains).
serve:
	$(GO) run ./cmd/nassim serve

# Serving suite: the serve package's singleflight, admission, shutdown,
# and golden tests under the race detector, then the serving benchmark
# (loadgen hosts the daemon in-process) exported to BENCH_serve.json
# (schema nassim-serve-bench/v1: latency percentiles, sustained RPS,
# dedup economy, queue pressure). -check enforces the acceptance
# criterion: 8 concurrent identical requests -> exactly one pipeline
# execution, dedup hit ratio >= 0.8.
bench-serve:
	$(GO) test -race -count=1 ./internal/serve
	$(GO) run ./cmd/loadgen -out BENCH_serve.json -check

# Per-stage pipeline timing + BENCH_telemetry.json, plus the run manifest
# (see README Observability).
stages:
	$(GO) run ./cmd/evalbench -stages -scale 0.1 -manifest-out RUN_MANIFEST.json

# Regenerate every committed BENCH_*.json baseline.
bench-all: bench-pipeline bench-mapper bench-frontend bench-reconcile stages
	NASSIM_CHAOS_BENCH_OUT=BENCH_chaos.json $(GO) test -run '^$$' \
		-bench BenchmarkChaosExec -benchtime 2s .
	$(GO) run ./cmd/loadgen -out BENCH_serve.json -check

# Regression gate: regenerate every benchmark into out/ and diff against
# the committed baselines (cmd/benchdiff exits non-zero on regression).
BENCHDIFF_OUT ?= benchout
benchdiff:
	mkdir -p $(BENCHDIFF_OUT)
	NASSIM_BENCH_OUT=$(BENCHDIFF_OUT)/BENCH_pipeline.json $(GO) test -run xxx -bench BenchmarkAssimilateParallel -benchtime 1x .
	NASSIM_MAPPER_BENCH_OUT=$(BENCHDIFF_OUT)/BENCH_mapper.json $(GO) test -run xxx \
		-bench 'BenchmarkRecommend$$|BenchmarkMapAll$$|BenchmarkTFIDFRank$$' -benchtime 200x .
	NASSIM_FRONTEND_BENCH_OUT=$(BENCHDIFF_OUT)/BENCH_frontend.json $(GO) test -run xxx \
		-bench 'BenchmarkParseAll|BenchmarkCompileTemplates|BenchmarkValidateConfigs|BenchmarkDecodeArtifact' -benchtime 5x .
	NASSIM_CHAOS_BENCH_OUT=$(BENCHDIFF_OUT)/BENCH_chaos.json $(GO) test -run '^$$' \
		-bench BenchmarkChaosExec -benchtime 2s .
	NASSIM_RECONCILE_BENCH_OUT=$(BENCHDIFF_OUT)/BENCH_reconcile.json $(GO) test -run '^$$' \
		-bench BenchmarkReconcileFleet -benchtime 5x .
	$(GO) run ./cmd/evalbench -stages -scale 0.1 -telemetry-out $(BENCHDIFF_OUT)/BENCH_telemetry.json \
		-manifest-out $(BENCHDIFF_OUT)/RUN_MANIFEST.json
	$(GO) run ./cmd/loadgen -out $(BENCHDIFF_OUT)/BENCH_serve.json -check
	$(GO) run ./cmd/benchdiff -baseline . -current $(BENCHDIFF_OUT)
