package nassim_test

// One benchmark per evaluation artifact of the paper (see DESIGN.md's
// per-experiment index):
//
//	BenchmarkParseManual/*          E1/E9: manual parsing per vendor
//	BenchmarkSyntaxValidation       E4/§5.1: formal syntax validation (Table 4 invalid row)
//	BenchmarkCGMConstruction/*      E4: CGM generation — the dominant cost in Table 4's construction time
//	BenchmarkInstanceMatching       E5/Figure 6: Algorithm 1 instance-template matching
//	BenchmarkHierarchyDerivation/*  E4: §5.2 derivation (Table 4 construction time)
//	BenchmarkEmpiricalValidation    E6/Figure 8: config-file validation (Table 4 matching ratio)
//	BenchmarkDeviceExec             E6/§5.3: live-device instance testing loop
//	BenchmarkMapperRecommend/*      E7: one Table 5 cell (per-parameter recommendation)
//	BenchmarkFineTune               E7: §6.3 NetBERT domain adaptation
//	BenchmarkEndToEndAssimilation   E8: the full pipeline the 9.1x headline measures

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"nassim"
	"nassim/internal/cgm"
	"nassim/internal/clisyntax"
	"nassim/internal/devmodel"
	"nassim/internal/hierarchy"
	"nassim/internal/mapper"
	"nassim/internal/nlp"
	"nassim/internal/telemetry"
)

const benchScale = 0.05

type benchData struct {
	model *nassim.DeviceModel
	pages []nassim.Page
	asr   *nassim.AssimilationResult
	files []nassim.ConfigFile
	anns  []nassim.Annotation
}

var (
	benchOnce  sync.Once
	benchState map[string]*benchData
	benchUDM   *nassim.UDM
)

func setup(b *testing.B) map[string]*benchData {
	b.Helper()
	benchOnce.Do(func() {
		benchState = map[string]*benchData{}
		benchUDM = nassim.BuildUDM()
		for _, vendor := range nassim.Vendors() {
			m, err := nassim.SyntheticModel(vendor, benchScale)
			if err != nil {
				panic(err)
			}
			asr, err := nassim.AssimilateModel(context.Background(), m)
			if err != nil {
				panic(err)
			}
			d := &benchData{
				model: m,
				pages: nassim.SyntheticManual(m),
				asr:   asr,
				anns:  nassim.GroundTruthAnnotations(m, 100, 9),
			}
			if files, ok := nassim.SyntheticConfigs(m, benchScale); ok {
				d.files = files
			}
			benchState[vendor] = d
		}
	})
	return benchState
}

func BenchmarkParseManual(b *testing.B) {
	data := setup(b)
	for _, vendor := range nassim.Vendors() {
		vendor := vendor
		b.Run(vendor, func(b *testing.B) {
			pages := data[vendor].pages
			b.ReportMetric(float64(len(pages)), "pages/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nassim.ParseManual(context.Background(), vendor, pages); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSyntaxValidation(b *testing.B) {
	data := setup(b)
	corpora := data["Huawei"].asr.Parsed.Corpora
	b.ReportMetric(float64(len(corpora)), "templates/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range corpora {
			_ = clisyntax.Validate(corpora[j].PrimaryCLI())
		}
	}
}

func BenchmarkCGMConstruction(b *testing.B) {
	data := setup(b)
	for _, vendor := range []string{"Huawei", "Nokia"} {
		vendor := vendor
		b.Run(vendor, func(b *testing.B) {
			corpora := data[vendor].asr.Parsed.Corpora
			b.ReportMetric(float64(len(corpora)), "templates/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix := cgm.NewIndex()
				for j := range corpora {
					_ = ix.Add(nassim.CorpusID(j), corpora[j].PrimaryCLI(), nil)
				}
			}
		})
	}
}

func BenchmarkInstanceMatching(b *testing.B) {
	// The Figure 6 toy example: match instances against the filter-policy
	// template's CGM.
	g, err := cgm.FromTemplate(
		"filter-policy { <acl-number> | ip-prefix <ip-prefix-name> | acl-name <acl-name> } { import | export }", nil)
	if err != nil {
		b.Fatal(err)
	}
	instances := []string{
		"filter-policy acl-name acl1 export",
		"filter-policy 2000 import",
		"filter-policy ip-prefix pfx1 import",
		"filter-policy acl-name acl1 both", // reject path
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, inst := range instances {
			g.Match(inst)
		}
	}
}

func BenchmarkHierarchyDerivation(b *testing.B) {
	data := setup(b)
	for _, vendor := range []string{"Huawei", "Nokia"} {
		vendor := vendor
		b.Run(vendor, func(b *testing.B) {
			parsed := data[vendor].asr.Parsed
			edges := make([]hierarchy.Edge, len(parsed.Hierarchy))
			for i, e := range parsed.Hierarchy {
				edges[i] = hierarchy.Edge{Parent: e.Parent, Child: e.Child}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, _ := hierarchy.Derive(context.Background(), vendor, parsed.Corpora, edges, nil)
				if len(v.Views) == 0 {
					b.Fatal("no views derived")
				}
			}
		})
	}
}

func BenchmarkEmpiricalValidation(b *testing.B) {
	data := setup(b)
	d := data["Huawei"]
	lines := 0
	for _, f := range d.files {
		lines += len(f.Lines)
	}
	b.ReportMetric(float64(lines), "lines/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := nassim.ValidateConfigs(context.Background(), d.asr.VDM, d.files)
		if rep.MatchingRatio() != 1.0 {
			b.Fatalf("ratio = %f", rep.MatchingRatio())
		}
	}
}

func BenchmarkDeviceExec(b *testing.B) {
	data := setup(b)
	d := data["H3C"]
	dev, err := nassim.NewDevice(d.model)
	if err != nil {
		b.Fatal(err)
	}
	sess := dev.NewSession()
	inst := d.model.InstantiateMinimal(d.model.Commands[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Exec("return")
		if resp := sess.Exec(inst); !resp.OK {
			b.Fatal(resp.Msg)
		}
	}
}

func BenchmarkMapperRecommend(b *testing.B) {
	data := setup(b)
	d := data["Huawei"]
	for _, kind := range []nassim.ModelKind{nassim.ModelIR, nassim.ModelSBERT, nassim.ModelIRSBERT} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			m, err := nassim.NewMapper(benchUDM, kind)
			if err != nil {
				b.Fatal(err)
			}
			ctx := nassim.ExtractContext(d.asr.VDM, d.anns[0].Param)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if recs := m.Recommend(ctx, 10); len(recs) == 0 {
					b.Fatal("no recommendations")
				}
			}
		})
	}
}

func BenchmarkFineTune(b *testing.B) {
	data := setup(b)
	d := data["Nokia"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := nassim.NewMapper(benchUDM, nassim.ModelNetBERT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.FineTune(d.asr.VDM, benchUDM, d.anns, 10, 1, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndAssimilation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		asr, err := nassim.AssimilateVendor(context.Background(), "H3C", 0.02)
		if err != nil {
			b.Fatal(err)
		}
		if len(asr.VDM.InvalidCLIs) != 0 {
			b.Fatal("corrections not applied")
		}
	}
}

func BenchmarkPipelineStages(b *testing.B) {
	// End-to-end assimilation with per-stage wall time, recorded under the
	// stage names of telemetry.StageTimer — the same schema cmd/evalbench
	// exports to BENCH_telemetry.json (nassim-telemetry-bench/v1), so
	// BENCH_*.json entries stay comparable across PRs.
	data := setup(b)
	d := data["Huawei"]
	st := telemetry.NewStageTimer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var parsed *nassim.ParseResult
		var err error
		st.Time(telemetry.StageParse, func() {
			parsed, err = nassim.ParseManual(context.Background(), "Huawei", d.pages)
		})
		if err != nil {
			b.Fatal(err)
		}
		first, firstRep := nassim.BuildVDM(context.Background(), "Huawei", parsed.Corpora, parsed.Hierarchy)
		st.Observe(telemetry.StageSyntaxCGM, firstRep.CGMBuildTime)
		st.Observe(telemetry.StageHierarchy, firstRep.DeriveTime)
		var v *nassim.VDM
		st.Time(telemetry.StageCorrect, func() {
			nassim.ApplyCorrections(parsed.Corpora, nassim.ExpertCorrections(d.model, first.InvalidCLIs))
			v, _ = nassim.BuildVDM(context.Background(), "Huawei", parsed.Corpora, parsed.Hierarchy)
		})
		st.Time(telemetry.StageEmpirical, func() {
			nassim.ValidateConfigs(context.Background(), v, d.files)
		})
	}
	b.StopTimer()
	for _, rec := range st.Records() {
		b.ReportMetric(float64(rec.AvgNS), rec.Name+"-ns/op")
	}
	doc := telemetry.NewBenchDoc("Huawei", benchScale, 9, st)
	if _, err := doc.MarshalIndent(); err != nil {
		b.Fatal(err)
	}
}

// mapperBench collects ns/op of the mapper hot-path benchmarks and, with
// NASSIM_MAPPER_BENCH_OUT set (make bench-mapper), exports them as
// BENCH_mapper.json (schema nassim-mapper-bench/v1) after every
// benchmark, so the perf trajectory of the vectorized scorer is tracked
// across PRs like the other BENCH_*.json documents.
type mapperBenchEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	N       int     `json:"n"`
}

var (
	mapperBenchMu      sync.Mutex
	mapperBenchEntries = map[string]mapperBenchEntry{}
)

func exportMapperBench(b *testing.B, name string) {
	b.Helper()
	out := os.Getenv("NASSIM_MAPPER_BENCH_OUT")
	if out == "" {
		return
	}
	mapperBenchMu.Lock()
	defer mapperBenchMu.Unlock()
	mapperBenchEntries[name] = mapperBenchEntry{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N), N: b.N}
	doc := struct {
		Schema     string                      `json:"schema"`
		Scale      float64                     `json:"scale"`
		Benchmarks map[string]mapperBenchEntry `json:"benchmarks"`
	}{"nassim-mapper-bench/v1", benchScale, mapperBenchEntries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecommend measures the vectorized Equation 2 hot path: one
// top-10 recommendation through the precombined UDM matrices (pure DL
// scores the full tree; IR+DL shortlists through the inverted index and
// re-ranks with KV dots per candidate).
func BenchmarkRecommend(b *testing.B) {
	data := setup(b)
	d := data["Huawei"]
	for _, kind := range []nassim.ModelKind{nassim.ModelIR, nassim.ModelSBERT, nassim.ModelIRSBERT} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			m, err := nassim.NewMapper(benchUDM, kind)
			if err != nil {
				b.Fatal(err)
			}
			ctx := nassim.ExtractContext(d.asr.VDM, d.anns[0].Param)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if recs := m.Recommend(ctx, 10); len(recs) == 0 {
					b.Fatal("no recommendations")
				}
			}
			exportMapperBench(b, "Recommend/"+string(kind))
		})
	}
	// Float-reference rows: the same DL paths with the int8-quantized
	// candidate prune disabled — the before/after pair for the quantized
	// scorer lives in one BENCH_mapper.json.
	for _, kind := range []nassim.ModelKind{nassim.ModelSBERT, nassim.ModelIRSBERT} {
		kind := kind
		b.Run(string(kind)+"-float", func(b *testing.B) {
			m, err := nassim.NewMapper(benchUDM, kind, nassim.WithFloatScoring())
			if err != nil {
				b.Fatal(err)
			}
			ctx := nassim.ExtractContext(d.asr.VDM, d.anns[0].Param)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if recs := m.Recommend(ctx, 10); len(recs) == 0 {
					b.Fatal("no recommendations")
				}
			}
			exportMapperBench(b, "Recommend/"+string(kind)+"-float")
		})
	}
}

// BenchmarkMapAll measures the parallel batch path: 100 parameter
// contexts fanned across the bounded worker pool with order-stable
// output — the shape the pipeline's map_to_udm stage runs.
func BenchmarkMapAll(b *testing.B) {
	data := setup(b)
	d := data["Huawei"]
	m, err := nassim.NewMapper(benchUDM, nassim.ModelIRSBERT)
	if err != nil {
		b.Fatal(err)
	}
	pcs := make([]nassim.ParamContext, 0, 100)
	for i := 0; len(pcs) < 100; i++ {
		pcs = append(pcs, nassim.ExtractContext(d.asr.VDM, d.anns[i%len(d.anns)].Param))
	}
	b.ReportMetric(float64(len(pcs)), "params/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.MapAll(context.Background(), pcs, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(pcs) {
			b.Fatal("short batch")
		}
	}
	exportMapperBench(b, "MapAll")
}

// BenchmarkTFIDFRank measures the IR fast path in isolation: one top-50
// shortlist query against the UDM corpus through the inverted index and
// accumulator scorer.
func BenchmarkTFIDFRank(b *testing.B) {
	data := setup(b)
	d := data["Huawei"]
	docs := make([][]string, benchUDM.Len())
	for i := range docs {
		docs[i] = nlp.Tokenize(strings.Join(benchUDM.Context(i), " "))
	}
	idx := nlp.NewTFIDF(docs)
	pc := nassim.ExtractContext(d.asr.VDM, d.anns[0].Param)
	query := nlp.Tokenize(strings.Join(pc.Sequences, " "))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ranked := idx.Rank(query, 50); len(ranked) == 0 {
			b.Fatal("empty ranking")
		}
	}
	exportMapperBench(b, "TFIDFRank")
}

func BenchmarkWeightGridSearch(b *testing.B) {
	// A1 ablation cost: 243 weight combinations over precomputed cosines.
	data := setup(b)
	d := data["Nokia"]
	enc := nlp.NewSBERT(nassim.EncoderDim, devmodel.GeneralSynonyms())
	we := mapper.BuildWeightEvals(benchUDM, enc, d.asr.VDM, d.anns, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.GridSearchWeights(we, []float64{0.25, 1, 4}, 1, []int{1, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkYANGBridge(b *testing.B) {
	// E10 cost: parse + bridge the vendor's YANG module set.
	data := setup(b)
	sources := nassim.SyntheticYANG(data["Huawei"].model)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var modules []*nassim.YANGModule
		for _, src := range sources {
			m, err := nassim.ParseYANG(src.Text)
			if err != nil {
				b.Fatal(err)
			}
			modules = append(modules, m)
		}
		if res := nassim.BridgeYANG("Huawei", modules); len(res.Corpora) == 0 {
			b.Fatal("empty bridge")
		}
	}
}

func BenchmarkNetconfEditConfig(b *testing.B) {
	// §8.1: one schema-validated edit-config round trip over TCP.
	data := setup(b)
	var modules []*nassim.YANGModule
	for _, src := range nassim.SyntheticYANG(data["Huawei"].model) {
		m, err := nassim.ParseYANG(src.Text)
		if err != nil {
			b.Fatal(err)
		}
		modules = append(modules, m)
	}
	store := nassim.NewNetconfStore(modules)
	srv, err := nassim.ServeNetconf(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := nassim.DialNetconf(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	var ns string
	var leaf nassim.YANGLeaf
	for _, m := range modules {
		ls := m.Leaves()
		if len(ls) > 0 {
			ns, leaf = m.Namespace, ls[0]
			break
		}
	}
	value := "test1"
	if leaf.Type == "uint32" {
		value = "3"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.EditConfig(ns, leaf.Path, leaf.Name, value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntentPush(b *testing.B) {
	// E12: one UDM intent translated, navigated, pushed and verified.
	data := setup(b)
	d := data["Huawei"]
	binding := nassim.BindingFromAnnotations(d.anns)
	dev, err := nassim.NewDevice(d.model)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := nassim.NewController(3)
	if err := nassim.RegisterDevice(ctrl, "bench-dev", "Huawei", d.asr.VDM, binding,
		nassim.SessionExecutor(dev.NewSession()), dev.ShowConfigCommand()); err != nil {
		b.Fatal(err)
	}
	var intent nassim.Intent
	for id := range binding {
		if strings.HasSuffix(id, "-time") || strings.HasSuffix(id, "-limit") {
			intent = nassim.Intent{AttrID: id, Value: "7"}
			break
		}
	}
	if intent.AttrID == "" {
		b.Skip("no int-typed bound attribute")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Apply("bench-dev", intent); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssimilateParallel measures the engine over the four built-in
// vendors with a 4-worker pool. With NASSIM_BENCH_OUT set it exports BENCH_pipeline.json
// (schema nassim-pipeline-bench/v1): per-stage wall time plus run/skip
// aggregates, comparable across PRs like BENCH_telemetry.json.
func BenchmarkAssimilateParallel(b *testing.B) {
	const workers = 4
	timer := nassim.NewStageTimer()
	var stats nassim.PipelineStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nassim.Assimilate(context.Background(), nassim.Options{
			Scale: benchScale, Workers: workers, Validate: true, Timer: timer,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats = res.Stats
	}
	b.StopTimer()
	b.ReportMetric(float64(stats.Runs()), "stages/op")
	out := os.Getenv("NASSIM_BENCH_OUT")
	if out == "" {
		return
	}
	doc := struct {
		Schema  string                  `json:"schema"`
		Workers int                     `json:"workers"`
		Scale   float64                 `json:"scale"`
		Jobs    int                     `json:"jobs"`
		WallNS  int64                   `json:"wall_ns"`
		Stages  []telemetry.StageRecord `json:"stages"`
	}{"nassim-pipeline-bench/v1", workers, benchScale, stats.Jobs,
		stats.Wall.Nanoseconds(), timer.Records()}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
